//! Deterministic per-provider latency model.
//!
//! Scalia's data path is dominated by wide-area round-trips to cloud
//! providers, yet the simulation's backends used to answer instantly — no
//! scenario could observe the difference between fetching `m` chunks
//! sequentially and racing them in parallel. A [`LatencyModel`] gives each
//! provider a *virtual* response time:
//!
//! ```text
//! latency(op) = (base_rtt + bytes / throughput) × jitter(seed, salt)
//! ```
//!
//! * `base_rtt` models the per-request round-trip (TLS + HTTP + provider
//!   overhead), paid by every operation including errors;
//! * `throughput` models the transfer time of the payload;
//! * `jitter` is a deterministic multiplicative factor in
//!   `[1 − jitter_pct, 1 + jitter_pct]`, drawn by hashing the model seed
//!   with a per-request salt (the chunk key), so the same request always
//!   sees the same latency — tests and simulations are exactly
//!   reproducible, with no wall-clock dependence.
//!
//! Latencies are plain numbers by default (the simulated clock advances, the
//! test suite stays fast); the store can opt into *really sleeping* the
//! modelled duration ([`crate::backend::SimulatedStore::set_real_sleep`]) so
//! benchmarks measure genuine wall-clock fan-out.

use serde::{Deserialize, Serialize};

/// Deterministic latency model of one provider. The default model is
/// [`LatencyModel::ZERO`]: every operation completes instantly, preserving
/// the pre-latency behaviour of catalogs that do not opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-request round-trip, in microseconds (paid even by errors).
    pub base_rtt_us: u64,
    /// Payload transfer throughput, in bytes per second (0 = infinite).
    pub throughput_bps: u64,
    /// Multiplicative jitter amplitude, in percent of the nominal latency
    /// (e.g. 10 ⇒ every draw lands in `[0.9, 1.1] × nominal`).
    pub jitter_pct: u8,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::ZERO
    }
}

/// splitmix64 — the same tiny deterministic mixer the test suite uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, used to salt the jitter draw with the request
/// key so identical requests always see identical latency.
pub fn salt_of(key: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in key.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl LatencyModel {
    /// The zero model: every operation is instantaneous.
    pub const ZERO: LatencyModel = LatencyModel {
        base_rtt_us: 0,
        throughput_bps: 0,
        jitter_pct: 0,
        seed: 0,
    };

    /// Creates a model from a base RTT (milliseconds), a throughput
    /// (MB/s, decimal), a jitter amplitude (percent) and a seed.
    pub fn new(base_rtt_ms: u64, throughput_mbps: u64, jitter_pct: u8, seed: u64) -> Self {
        LatencyModel {
            base_rtt_us: base_rtt_ms * 1_000,
            throughput_bps: throughput_mbps * 1_000_000,
            jitter_pct: jitter_pct.min(99),
            seed,
        }
    }

    /// A typical well-connected public cloud: ~30 ms RTT, 80 MB/s, 10 %
    /// jitter.
    pub fn typical(seed: u64) -> Self {
        LatencyModel::new(30, 80, 10, seed)
    }

    /// A far-away or overloaded provider: ~10× the typical RTT and a fifth
    /// of the throughput.
    pub fn slow(seed: u64) -> Self {
        LatencyModel::new(300, 16, 10, seed)
    }

    /// A *limping* provider: nominal latency is typical but jitter is huge,
    /// so a fraction of requests straggle far beyond the median — the
    /// straggler profile hedged reads exist to absorb.
    pub fn limping(seed: u64) -> Self {
        LatencyModel::new(40, 60, 90, seed)
    }

    /// Returns `true` if this is the zero (instantaneous) model.
    pub fn is_zero(&self) -> bool {
        self.base_rtt_us == 0 && self.throughput_bps == 0
    }

    /// The nominal (jitter-free) latency of transferring `bytes`, in
    /// microseconds.
    pub fn expected_us(&self, bytes: u64) -> u64 {
        let transfer = if self.throughput_bps == 0 {
            0
        } else {
            // bytes / (bytes/s) in µs, rounded up so tiny payloads still pay.
            ((bytes as u128 * 1_000_000).div_ceil(self.throughput_bps as u128)) as u64
        };
        self.base_rtt_us + transfer
    }

    /// A deterministic latency draw for transferring `bytes`, salted by the
    /// request (use [`salt_of`] on the storage key). Identical
    /// `(model, bytes, salt)` always produce the identical latency.
    pub fn sample_us(&self, bytes: u64, salt: u64) -> u64 {
        let nominal = self.expected_us(bytes);
        if nominal == 0 || self.jitter_pct == 0 {
            return nominal;
        }
        let draw = splitmix64(self.seed ^ salt);
        // Uniform in [-jitter_pct, +jitter_pct] percent.
        let span = 2 * self.jitter_pct as u64 + 1;
        let offset = (draw % span) as i64 - self.jitter_pct as i64;
        let adjusted = nominal as i64 + nominal as i64 * offset / 100;
        adjusted.max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_instantaneous() {
        let m = LatencyModel::ZERO;
        assert!(m.is_zero());
        assert_eq!(m.expected_us(1_000_000_000), 0);
        assert_eq!(m.sample_us(1_000_000_000, 42), 0);
        assert_eq!(LatencyModel::default(), LatencyModel::ZERO);
    }

    #[test]
    fn expected_latency_scales_with_bytes() {
        // 10 ms RTT, 10 MB/s: 1 MB transfers in 100 ms.
        let m = LatencyModel::new(10, 10, 0, 0);
        assert_eq!(m.expected_us(0), 10_000);
        assert_eq!(m.expected_us(1_000_000), 10_000 + 100_000);
        // Rounding up: a single byte still pays ≥ 1 µs of transfer.
        assert_eq!(m.expected_us(1), 10_001);
    }

    #[test]
    fn samples_are_deterministic_and_bounded() {
        let m = LatencyModel::new(100, 50, 20, 7);
        let nominal = m.expected_us(5_000_000);
        for salt in 0..500u64 {
            let a = m.sample_us(5_000_000, salt);
            let b = m.sample_us(5_000_000, salt);
            assert_eq!(a, b, "same salt must reproduce");
            let lo = nominal - nominal * 20 / 100;
            let hi = nominal + nominal * 20 / 100;
            assert!(a >= lo && a <= hi, "{a} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn jitter_actually_spreads() {
        let m = LatencyModel::new(100, 0, 30, 99);
        let mut distinct = std::collections::BTreeSet::new();
        for salt in 0..100u64 {
            distinct.insert(m.sample_us(0, salt));
        }
        assert!(distinct.len() > 10, "jitter should produce spread");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = LatencyModel::new(100, 0, 50, 1);
        let b = LatencyModel::new(100, 0, 50, 2);
        let diverged = (0..50u64).any(|salt| a.sample_us(0, salt) != b.sample_us(0, salt));
        assert!(diverged);
    }

    #[test]
    fn salt_of_is_stable_and_key_sensitive() {
        assert_eq!(salt_of("skey.0"), salt_of("skey.0"));
        assert_ne!(salt_of("skey.0"), salt_of("skey.1"));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let typical = LatencyModel::typical(0).expected_us(1_000_000);
        let slow = LatencyModel::slow(0).expected_us(1_000_000);
        assert!(slow > 5 * typical, "slow ({slow}) ≫ typical ({typical})");
        assert!(LatencyModel::limping(0).jitter_pct > 50);
    }
}
