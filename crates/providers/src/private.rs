//! Private storage resources.
//!
//! §III-E of the paper: corporate storage resources (workstations, NAS, SAN,
//! dedicated servers) are registered to Scalia with their capacity and
//! prices, and are accessed through a lightweight standalone web service
//! exposing an authenticated S3-compatible interface. Requests are signed
//! with an HMAC of the request parameters using a private token, and carry a
//! timestamp to prevent replay attacks.
//!
//! [`PrivateResource`] models that web service: it wraps a capacity-limited
//! [`SimulatedStore`] and checks the request signature and timestamp before
//! every operation.

use crate::backend::{ObjectStore, SimulatedStore};
use crate::descriptor::ProviderDescriptor;
use bytes::Bytes;
use parking_lot::Mutex;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::md5::hmac_md5;
use scalia_types::time::{Duration, SimTime};

/// A signed request to a private storage resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedRequest {
    /// Operation name (e.g. `"PUT"`, `"GET"`).
    pub operation: String,
    /// Object key.
    pub key: String,
    /// Request timestamp (for replay protection).
    pub timestamp: SimTime,
    /// HMAC-MD5 of `operation|key|timestamp` under the private token.
    pub signature: [u8; 16],
}

impl SignedRequest {
    /// Signs a request with the given private token.
    pub fn sign(token: &[u8], operation: &str, key: &str, timestamp: SimTime) -> Self {
        let message = Self::message(operation, key, timestamp);
        SignedRequest {
            operation: operation.to_string(),
            key: key.to_string(),
            timestamp,
            signature: hmac_md5(token, &message),
        }
    }

    fn message(operation: &str, key: &str, timestamp: SimTime) -> Vec<u8> {
        format!("{operation}|{key}|{}", timestamp.secs()).into_bytes()
    }

    /// Verifies the signature under `token`.
    pub fn verify(&self, token: &[u8]) -> bool {
        let expected = hmac_md5(
            token,
            &Self::message(&self.operation, &self.key, self.timestamp),
        );
        expected == self.signature
    }
}

/// A private storage resource fronted by an authenticating web service.
pub struct PrivateResource {
    store: SimulatedStore,
    token: Vec<u8>,
    /// Maximum accepted clock skew / request age.
    max_skew: Duration,
    /// Current time of the resource (advanced by the simulation clock).
    now: Mutex<SimTime>,
}

impl PrivateResource {
    /// Registers a private resource with its descriptor and private token.
    ///
    /// The descriptor should carry a capacity (see
    /// [`ProviderDescriptor::private`]); requests older than `max_skew` are
    /// rejected as replays.
    pub fn new(
        descriptor: ProviderDescriptor,
        token: impl Into<Vec<u8>>,
        max_skew: Duration,
    ) -> Self {
        PrivateResource {
            store: SimulatedStore::new(descriptor),
            token: token.into(),
            max_skew,
            now: Mutex::new(SimTime::ZERO),
        }
    }

    /// The provider id of the resource.
    pub fn provider_id(&self) -> ProviderId {
        self.store.provider_id()
    }

    /// The underlying metered store (for billing inspection in experiments).
    pub fn store(&self) -> &SimulatedStore {
        &self.store
    }

    /// Advances the resource clock (also charges storage GB-hours).
    pub fn tick(&self, now: SimTime) {
        *self.now.lock() = now;
        self.store.tick(now);
    }

    fn authenticate(&self, request: &SignedRequest, expected_op: &str) -> Result<()> {
        let id = self.store.provider_id();
        if request.operation != expected_op {
            return Err(ScaliaError::AuthenticationFailed(id));
        }
        if !request.verify(&self.token) {
            return Err(ScaliaError::AuthenticationFailed(id));
        }
        let now = *self.now.lock();
        let age = now.since(request.timestamp);
        let future_skew = request.timestamp.since(now);
        if age > self.max_skew || future_skew > self.max_skew {
            return Err(ScaliaError::AuthenticationFailed(id));
        }
        Ok(())
    }

    /// Stores data through a signed PUT request.
    pub fn put(&self, request: &SignedRequest, data: Bytes) -> Result<()> {
        self.authenticate(request, "PUT")?;
        self.store.put(&request.key, data)
    }

    /// Retrieves data through a signed GET request.
    pub fn get(&self, request: &SignedRequest) -> Result<Bytes> {
        self.authenticate(request, "GET")?;
        self.store.get(&request.key)
    }

    /// Deletes data through a signed DELETE request.
    pub fn delete(&self, request: &SignedRequest) -> Result<()> {
        self.authenticate(request, "DELETE")?;
        self.store.delete(&request.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::PricingPolicy;
    use crate::sla::ProviderSla;
    use scalia_types::size::ByteSize;
    use scalia_types::zone::{Zone, ZoneSet};

    fn resource() -> PrivateResource {
        let descriptor = ProviderDescriptor::private(
            ProviderId::new(5),
            "corp-nas",
            ProviderSla::from_percent(99.99, 99.5),
            PricingPolicy::from_dollars(0.01, 0.0, 0.0, 0.0),
            ZoneSet::of(&[Zone::EU]),
            ByteSize::from_mb(1),
        );
        PrivateResource::new(
            descriptor,
            b"secret-token".to_vec(),
            Duration::from_hours(1),
        )
    }

    #[test]
    fn signed_roundtrip() {
        let r = resource();
        r.tick(SimTime::from_hours(10));
        let t = SimTime::from_hours(10);
        let put = SignedRequest::sign(b"secret-token", "PUT", "backup.tar", t);
        r.put(&put, Bytes::from_static(b"data")).unwrap();
        let get = SignedRequest::sign(b"secret-token", "GET", "backup.tar", t);
        assert_eq!(r.get(&get).unwrap(), Bytes::from_static(b"data"));
        let del = SignedRequest::sign(b"secret-token", "DELETE", "backup.tar", t);
        r.delete(&del).unwrap();
        assert!(r.get(&get).is_err());
    }

    #[test]
    fn wrong_token_is_rejected() {
        let r = resource();
        let req = SignedRequest::sign(b"wrong-token", "PUT", "k", SimTime::ZERO);
        assert!(matches!(
            r.put(&req, Bytes::from_static(b"x")).unwrap_err(),
            ScaliaError::AuthenticationFailed(_)
        ));
    }

    #[test]
    fn tampered_request_is_rejected() {
        let r = resource();
        let mut req = SignedRequest::sign(b"secret-token", "PUT", "k", SimTime::ZERO);
        req.key = "other".to_string();
        assert!(matches!(
            r.put(&req, Bytes::from_static(b"x")).unwrap_err(),
            ScaliaError::AuthenticationFailed(_)
        ));
        // Operation mismatch (replaying a GET signature as PUT) is rejected.
        let get = SignedRequest::sign(b"secret-token", "GET", "k", SimTime::ZERO);
        assert!(r.put(&get, Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn stale_request_is_rejected_as_replay() {
        let r = resource();
        let old = SignedRequest::sign(b"secret-token", "PUT", "k", SimTime::ZERO);
        r.tick(SimTime::from_hours(5));
        assert!(matches!(
            r.put(&old, Bytes::from_static(b"x")).unwrap_err(),
            ScaliaError::AuthenticationFailed(_)
        ));
        // A fresh request at the new time succeeds.
        let fresh = SignedRequest::sign(b"secret-token", "PUT", "k", SimTime::from_hours(5));
        r.put(&fresh, Bytes::from_static(b"x")).unwrap();
    }

    #[test]
    fn capacity_of_private_resource_is_enforced() {
        let r = resource();
        let t = SimTime::ZERO;
        let big = SignedRequest::sign(b"secret-token", "PUT", "big", t);
        r.put(&big, Bytes::from(vec![0u8; 900_000])).unwrap();
        let more = SignedRequest::sign(b"secret-token", "PUT", "more", t);
        assert!(matches!(
            r.put(&more, Bytes::from(vec![0u8; 200_000])).unwrap_err(),
            ScaliaError::CapacityExceeded(_)
        ));
    }

    #[test]
    fn signature_verification_is_symmetric() {
        let req = SignedRequest::sign(b"tok", "GET", "key", SimTime::from_secs(123));
        assert!(req.verify(b"tok"));
        assert!(!req.verify(b"other"));
    }
}
