//! The provider catalog.
//!
//! A [`ProviderCatalog`] is the dynamic set `P(obj)` of storage providers
//! available for placement. Providers can be registered and deregistered at
//! run time (new offerings appearing, providers going out of business —
//! §IV-D), and marked unavailable during transient outages (§IV-E).
//!
//! [`ProviderCatalog::paper_catalog`] reproduces the paper's Fig. 3 exactly.

use crate::descriptor::ProviderDescriptor;
use crate::pricing::PricingPolicy;
use crate::sla::ProviderSla;
use parking_lot::RwLock;
use scalia_types::ids::ProviderId;
use scalia_types::zone::{Zone, ZoneSet};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe, mutable catalog of storage providers.
///
/// Every mutation (registration, deregistration, availability marking)
/// bumps a monotonically increasing [`version`](Self::version); consumers
/// that cache placement decisions key them by this version so any catalog
/// change invalidates the cache.
#[derive(Debug, Default)]
pub struct ProviderCatalog {
    inner: RwLock<CatalogInner>,
    version: AtomicU64,
}

/// Relative shift (in percent) below which a refreshed observed-latency
/// summary is considered noise: the published value is kept and the catalog
/// version is *not* bumped, so steady-state refreshes don't thrash the
/// placement cache. 25 % comfortably exceeds the latency models' jitter.
pub const OBSERVED_LATENCY_SHIFT_PCT: u64 = 25;

#[derive(Debug, Default)]
struct CatalogInner {
    providers: BTreeMap<ProviderId, ProviderDescriptor>,
    /// Providers currently marked unreachable (transient outage).
    unavailable: BTreeMap<ProviderId, bool>,
    next_id: u32,
}

impl ProviderCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty catalog wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The current catalog version: bumped by every mutation. Placement
    /// caches key their entries by this value.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Registers a provider described by a closure that receives the id the
    /// catalog assigned. Returns the assigned id.
    pub fn register_with(
        &self,
        build: impl FnOnce(ProviderId) -> ProviderDescriptor,
    ) -> ProviderId {
        let mut inner = self.inner.write();
        let id = ProviderId::new(inner.next_id);
        inner.next_id += 1;
        let descriptor = build(id);
        inner.providers.insert(id, descriptor);
        drop(inner);
        self.bump_version();
        id
    }

    /// Registers an already-built descriptor, overriding its id with a fresh
    /// catalog-assigned one. Returns the assigned id.
    pub fn register(&self, mut descriptor: ProviderDescriptor) -> ProviderId {
        self.register_with(move |id| {
            descriptor.id = id;
            descriptor
        })
    }

    /// Removes a provider from the catalog (e.g. bankruptcy or boycott).
    /// Returns the removed descriptor if it existed.
    pub fn deregister(&self, id: ProviderId) -> Option<ProviderDescriptor> {
        let mut inner = self.inner.write();
        inner.unavailable.remove(&id);
        let removed = inner.providers.remove(&id);
        drop(inner);
        self.bump_version();
        removed
    }

    /// Returns the descriptor of a provider.
    pub fn get(&self, id: ProviderId) -> Option<ProviderDescriptor> {
        self.inner.read().providers.get(&id).cloned()
    }

    /// All registered providers, in id order.
    pub fn all(&self) -> Vec<ProviderDescriptor> {
        self.inner.read().providers.values().cloned().collect()
    }

    /// All providers that are currently reachable (not in a transient
    /// outage), in id order. This is the set the placement algorithm works
    /// on during a provider failure (§III-D3).
    pub fn available(&self) -> Vec<ProviderDescriptor> {
        let inner = self.inner.read();
        inner
            .providers
            .values()
            .filter(|p| !inner.unavailable.get(&p.id).copied().unwrap_or(false))
            .cloned()
            .collect()
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.inner.read().providers.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes a provider's observed read-latency summary (a windowed p95
    /// in microseconds, `None` when too few recent samples exist) into its
    /// descriptor, so placement searches and hedged reads see it.
    ///
    /// The update is **hysteretic**: a summary that did not shift materially
    /// — same presence and within [`OBSERVED_LATENCY_SHIFT_PCT`] percent of
    /// the published value — is dropped entirely, leaving the descriptor and
    /// the catalog [`version`](Self::version) untouched. Rankings therefore
    /// only move (and placement caches only invalidate) when observations
    /// actually changed the picture, not on every jittery refresh. Returns
    /// `true` if the catalog changed.
    pub fn set_observed_read_latency(&self, id: ProviderId, observed: Option<u64>) -> bool {
        let mut inner = self.inner.write();
        let Some(descriptor) = inner.providers.get_mut(&id) else {
            return false;
        };
        let current = descriptor.observed_read_latency_us;
        let material = match (current, observed) {
            (None, None) => false,
            (None, Some(_)) | (Some(_), None) => true,
            (Some(old), Some(new)) => {
                let (lo, hi) = (old.min(new) as u128, old.max(new) as u128);
                hi * 100 > lo * (100 + OBSERVED_LATENCY_SHIFT_PCT as u128)
            }
        };
        if !material {
            return false;
        }
        descriptor.observed_read_latency_us = observed;
        drop(inner);
        self.bump_version();
        true
    }

    /// The observed read-latency summary currently published for a provider.
    pub fn observed_read_latency(&self, id: ProviderId) -> Option<u64> {
        self.inner
            .read()
            .providers
            .get(&id)
            .and_then(|p| p.observed_read_latency_us)
    }

    /// Marks a provider unreachable (start of a transient outage).
    pub fn mark_unavailable(&self, id: ProviderId) {
        self.inner.write().unavailable.insert(id, true);
        self.bump_version();
    }

    /// Marks a provider reachable again (outage over).
    pub fn mark_available(&self, id: ProviderId) {
        self.inner.write().unavailable.remove(&id);
        self.bump_version();
    }

    /// Returns `true` if the provider is currently reachable.
    pub fn is_available(&self, id: ProviderId) -> bool {
        let inner = self.inner.read();
        inner.providers.contains_key(&id) && !inner.unavailable.get(&id).copied().unwrap_or(false)
    }

    /// Builds the paper's Fig. 3 catalog: S3(h), S3(l), Rackspace CloudFiles,
    /// Microsoft Azure and Google Storage, with their exact prices and SLAs.
    pub fn paper_catalog() -> Arc<Self> {
        let catalog = Self::shared();
        catalog.register_with(s3_high);
        catalog.register_with(s3_low);
        catalog.register_with(rackspace);
        catalog.register_with(azure);
        catalog.register_with(google);
        catalog
    }
}

/// Amazon S3 (High durability): 99.999999999 / 99.9, EU+US+APAC,
/// $0.14 / $0.10 / $0.15 / $0.01.
pub fn s3_high(id: ProviderId) -> ProviderDescriptor {
    ProviderDescriptor::public(
        id,
        "S3(h)",
        "Amazon S3 (High)",
        ProviderSla::from_percent(99.999999999, 99.9),
        PricingPolicy::from_dollars(0.14, 0.10, 0.15, 0.01),
        ZoneSet::of(&[Zone::EU, Zone::US, Zone::APAC]),
    )
}

/// Amazon S3 (Low / reduced redundancy): 99.99 / 99.9, EU+US+APAC,
/// $0.093 / $0.10 / $0.15 / $0.01.
pub fn s3_low(id: ProviderId) -> ProviderDescriptor {
    ProviderDescriptor::public(
        id,
        "S3(l)",
        "Amazon S3 (Low)",
        ProviderSla::from_percent(99.99, 99.9),
        PricingPolicy::from_dollars(0.093, 0.10, 0.15, 0.01),
        ZoneSet::of(&[Zone::EU, Zone::US, Zone::APAC]),
    )
}

/// Rackspace CloudFiles: 99.9999 / 99.9, US, $0.15 / $0.08 / $0.18 / $0.00.
pub fn rackspace(id: ProviderId) -> ProviderDescriptor {
    ProviderDescriptor::public(
        id,
        "RS",
        "Rackspace CloudFiles",
        ProviderSla::from_percent(99.9999, 99.9),
        PricingPolicy::from_dollars(0.15, 0.08, 0.18, 0.0),
        ZoneSet::of(&[Zone::US]),
    )
}

/// Microsoft Azure: 99.9999 / 99.9, US, $0.15 / $0.10 / $0.15 / $0.01.
pub fn azure(id: ProviderId) -> ProviderDescriptor {
    ProviderDescriptor::public(
        id,
        "Azu",
        "Microsoft Azure",
        ProviderSla::from_percent(99.9999, 99.9),
        PricingPolicy::from_dollars(0.15, 0.10, 0.15, 0.01),
        ZoneSet::of(&[Zone::US]),
    )
}

/// Google Storage: 99.9999 / 99.9, US, $0.17 / $0.10 / $0.15 / $0.01.
pub fn google(id: ProviderId) -> ProviderDescriptor {
    ProviderDescriptor::public(
        id,
        "Ggl",
        "Google Storage",
        ProviderSla::from_percent(99.9999, 99.9),
        PricingPolicy::from_dollars(0.17, 0.10, 0.15, 0.01),
        ZoneSet::of(&[Zone::US]),
    )
}

/// The hypothetical cheaper provider registered at hour 400 of the §IV-D
/// scenario: $0.09 / $0.10 / $0.15 / $0.01, durability 99.9999, avail 99.9.
pub fn cheapstor(id: ProviderId) -> ProviderDescriptor {
    ProviderDescriptor::public(
        id,
        "CheapStor",
        "CheapStor (new provider)",
        ProviderSla::from_percent(99.9999, 99.9),
        PricingPolicy::from_dollars(0.09, 0.10, 0.15, 0.01),
        ZoneSet::of(&[Zone::US]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_matches_fig3() {
        let catalog = ProviderCatalog::paper_catalog();
        assert_eq!(catalog.len(), 5);
        let all = catalog.all();
        let names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["S3(h)", "S3(l)", "RS", "Azu", "Ggl"]);

        let s3h = &all[0];
        assert!((s3h.pricing.storage_gb_month.dollars() - 0.14).abs() < 1e-9);
        assert!((s3h.sla.durability.probability() - 0.99999999999).abs() < 1e-15);
        assert!(s3h.zones.contains(Zone::EU) && s3h.zones.contains(Zone::APAC));

        let s3l = &all[1];
        assert!((s3l.pricing.storage_gb_month.dollars() - 0.093).abs() < 1e-9);

        let rs = &all[2];
        assert_eq!(rs.pricing.ops_per_1000.dollars(), 0.0);
        assert!((rs.pricing.bandwidth_out_gb.dollars() - 0.18).abs() < 1e-9);
        assert!(rs.zones.contains(Zone::US) && !rs.zones.contains(Zone::EU));

        let ggl = &all[4];
        assert!((ggl.pricing.storage_gb_month.dollars() - 0.17).abs() < 1e-9);
    }

    #[test]
    fn register_and_deregister() {
        let catalog = ProviderCatalog::new();
        assert!(catalog.is_empty());
        let id = catalog.register_with(cheapstor);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.get(id).unwrap().name, "CheapStor");
        let removed = catalog.deregister(id).unwrap();
        assert_eq!(removed.name, "CheapStor");
        assert!(catalog.is_empty());
        assert!(catalog.deregister(id).is_none());
    }

    #[test]
    fn ids_are_assigned_sequentially_and_stable() {
        let catalog = ProviderCatalog::new();
        let a = catalog.register_with(s3_high);
        let b = catalog.register_with(s3_low);
        assert_ne!(a, b);
        assert_eq!(catalog.get(a).unwrap().id, a);
        assert_eq!(catalog.get(b).unwrap().id, b);
        // Deregistering does not recycle ids.
        catalog.deregister(a);
        let c = catalog.register_with(azure);
        assert_ne!(c, a);
    }

    #[test]
    fn availability_marking() {
        let catalog = ProviderCatalog::paper_catalog();
        let all = catalog.all();
        let s3l_id = all[1].id;
        assert!(catalog.is_available(s3l_id));
        assert_eq!(catalog.available().len(), 5);

        catalog.mark_unavailable(s3l_id);
        assert!(!catalog.is_available(s3l_id));
        assert_eq!(catalog.available().len(), 4);
        assert!(catalog.available().iter().all(|p| p.id != s3l_id));

        catalog.mark_available(s3l_id);
        assert!(catalog.is_available(s3l_id));
        assert_eq!(catalog.available().len(), 5);
    }

    #[test]
    fn every_mutation_bumps_the_version() {
        let catalog = ProviderCatalog::new();
        let v0 = catalog.version();
        let id = catalog.register_with(cheapstor);
        let v1 = catalog.version();
        assert!(v1 > v0, "register must bump the version");
        catalog.mark_unavailable(id);
        let v2 = catalog.version();
        assert!(v2 > v1, "outage must bump the version");
        catalog.mark_available(id);
        let v3 = catalog.version();
        assert!(v3 > v2, "recovery must bump the version");
        catalog.deregister(id);
        assert!(catalog.version() > v3, "deregister must bump the version");
    }

    #[test]
    fn observed_latency_updates_are_hysteretic() {
        let catalog = ProviderCatalog::paper_catalog();
        let id = catalog.all()[0].id;
        let v0 = catalog.version();

        // First publication is material: descriptor + version move.
        assert!(catalog.set_observed_read_latency(id, Some(40_000)));
        assert_eq!(catalog.observed_read_latency(id), Some(40_000));
        assert_eq!(
            catalog.get(id).unwrap().observed_read_latency_us,
            Some(40_000)
        );
        let v1 = catalog.version();
        assert!(v1 > v0);

        // A jittery refresh within the shift band is dropped entirely.
        assert!(!catalog.set_observed_read_latency(id, Some(44_000)));
        assert_eq!(catalog.observed_read_latency(id), Some(40_000));
        assert_eq!(catalog.version(), v1, "noise must not bump the version");

        // A material shift (>25 %) replaces the summary and invalidates.
        assert!(catalog.set_observed_read_latency(id, Some(120_000)));
        assert_eq!(catalog.observed_read_latency(id), Some(120_000));
        assert!(catalog.version() > v1);

        // Forgiveness (None) is always material; repeating it is not.
        let v2 = catalog.version();
        assert!(catalog.set_observed_read_latency(id, None));
        assert_eq!(catalog.observed_read_latency(id), None);
        assert!(catalog.version() > v2);
        let v3 = catalog.version();
        assert!(!catalog.set_observed_read_latency(id, None));
        assert_eq!(catalog.version(), v3);

        // Unknown providers are a no-op.
        assert!(!catalog.set_observed_read_latency(ProviderId::new(99), Some(1)));
    }

    #[test]
    fn unknown_provider_is_not_available() {
        let catalog = ProviderCatalog::new();
        assert!(!catalog.is_available(ProviderId::new(42)));
        assert!(catalog.get(ProviderId::new(42)).is_none());
    }

    #[test]
    fn register_prebuilt_descriptor_overrides_id() {
        let catalog = ProviderCatalog::new();
        let descriptor = s3_high(ProviderId::new(999));
        let id = catalog.register(descriptor);
        assert_ne!(id, ProviderId::new(999));
        assert_eq!(catalog.get(id).unwrap().name, "S3(h)");
    }
}
