//! Simulated provider object stores.
//!
//! Each provider is backed by a [`SimulatedStore`]: an in-memory key/value
//! object store exposing the S3-like [`ObjectStore`] interface the Scalia
//! engine programs against, with:
//!
//! * request/bandwidth metering (feeding a [`BillingMeter`]),
//! * storage metering via an explicit [`SimulatedStore::tick`] that charges
//!   GB-hours for the bytes currently held,
//! * failure injection — an [`OutageSchedule`] plus a manual up/down switch —
//!   so the evaluation can take providers offline (§IV-E),
//! * a capacity limit for private resources.

use crate::billing::BillingMeter;
use crate::descriptor::ProviderDescriptor;
use crate::failure::OutageSchedule;
use bytes::Bytes;
use parking_lot::Mutex;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::money::Money;
use scalia_types::size::ByteSize;
use scalia_types::time::SimTime;
use scalia_types::usage::ResourceUsage;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The S3-like interface every storage backend exposes.
pub trait ObjectStore: Send + Sync {
    /// The provider this store belongs to.
    fn provider_id(&self) -> ProviderId;

    /// Stores `data` under `key`, overwriting any previous value.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;

    /// Retrieves the value stored under `key`.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Deletes the value stored under `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;

    /// Lists all keys with the given prefix.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Returns `true` if a value is stored under `key`.
    fn exists(&self, key: &str) -> Result<bool>;
}

struct StoreState {
    objects: BTreeMap<String, Bytes>,
    stored_bytes: ByteSize,
    meter: BillingMeter,
    manually_down: bool,
    now: SimTime,
    last_tick: SimTime,
}

/// An in-memory, metered, failure-injectable object store for one provider.
pub struct SimulatedStore {
    descriptor: ProviderDescriptor,
    outages: OutageSchedule,
    state: Mutex<StoreState>,
}

impl SimulatedStore {
    /// Creates a store for the given provider with no scheduled outages.
    pub fn new(descriptor: ProviderDescriptor) -> Self {
        Self::with_outages(descriptor, OutageSchedule::always_up())
    }

    /// Creates a store with a pre-programmed outage schedule.
    pub fn with_outages(descriptor: ProviderDescriptor, outages: OutageSchedule) -> Self {
        let meter = BillingMeter::new(descriptor.pricing);
        SimulatedStore {
            descriptor,
            outages,
            state: Mutex::new(StoreState {
                objects: BTreeMap::new(),
                stored_bytes: ByteSize::ZERO,
                meter,
                manually_down: false,
                now: SimTime::ZERO,
                last_tick: SimTime::ZERO,
            }),
        }
    }

    /// Creates a store wrapped in an [`Arc`] for sharing across engines.
    pub fn shared(descriptor: ProviderDescriptor) -> Arc<Self> {
        Arc::new(Self::new(descriptor))
    }

    /// The provider descriptor backing this store.
    pub fn descriptor(&self) -> &ProviderDescriptor {
        &self.descriptor
    }

    /// Manually takes the provider down (in addition to scheduled outages).
    pub fn set_down(&self, down: bool) {
        self.state.lock().manually_down = down;
    }

    /// Returns `true` if the provider is reachable right now.
    pub fn is_up(&self) -> bool {
        let state = self.state.lock();
        !state.manually_down && self.outages.is_up(state.now)
    }

    /// Advances the store's clock to `now`, charging storage GB-hours for
    /// the bytes held since the previous tick.
    pub fn tick(&self, now: SimTime) {
        let mut state = self.state.lock();
        if now <= state.last_tick {
            state.now = now;
            return;
        }
        let hours = now.since(state.last_tick).as_hours();
        let held = state.stored_bytes;
        state.meter.record_storage(held, hours);
        state.last_tick = now;
        state.now = now;
    }

    /// Bytes currently stored.
    pub fn stored_bytes(&self) -> ByteSize {
        self.state.lock().stored_bytes
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> usize {
        self.state.lock().objects.len()
    }

    /// Accumulated resource usage (bandwidth, operations, storage GB-hours).
    pub fn usage(&self) -> ResourceUsage {
        self.state.lock().meter.usage()
    }

    /// Accumulated cost under the provider's pricing policy.
    pub fn accrued_cost(&self) -> Money {
        self.state.lock().meter.total_cost()
    }

    fn check_up(&self, state: &StoreState) -> Result<()> {
        if state.manually_down || self.outages.is_down(state.now) {
            Err(ScaliaError::ProviderUnavailable(self.descriptor.id))
        } else {
            Ok(())
        }
    }
}

impl ObjectStore for SimulatedStore {
    fn provider_id(&self) -> ProviderId {
        self.descriptor.id
    }

    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        let new_size = ByteSize::from_bytes(data.len() as u64);

        // Enforce capacity for private resources ("will never grow beyond
        // the limit set in the properties of the resource", §III-E).
        if let Some(capacity) = self.descriptor.capacity {
            let existing = state
                .objects
                .get(key)
                .map(|old| ByteSize::from_bytes(old.len() as u64))
                .unwrap_or(ByteSize::ZERO);
            let projected = state.stored_bytes.saturating_sub(existing) + new_size;
            if projected > capacity {
                // The rejected request still counts as an operation.
                state.meter.record(ResourceUsage::operations(1));
                return Err(ScaliaError::CapacityExceeded(self.descriptor.id));
            }
        }

        state.meter.record_put(new_size);
        if let Some(old) = state.objects.insert(key.to_string(), data) {
            state.stored_bytes = state
                .stored_bytes
                .saturating_sub(ByteSize::from_bytes(old.len() as u64));
        }
        state.stored_bytes += new_size;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        match state.objects.get(key).cloned() {
            Some(data) => {
                state
                    .meter
                    .record_get(ByteSize::from_bytes(data.len() as u64));
                Ok(data)
            }
            None => {
                state.meter.record(ResourceUsage::operations(1));
                Err(ScaliaError::ChunkMissing {
                    provider: self.descriptor.id,
                    chunk_key: key.to_string(),
                })
            }
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        state.meter.record_delete();
        if let Some(old) = state.objects.remove(key) {
            state.stored_bytes = state
                .stored_bytes
                .saturating_sub(ByteSize::from_bytes(old.len() as u64));
        }
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        state.meter.record(ResourceUsage::operations(1));
        Ok(state
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        state.meter.record(ResourceUsage::operations(1));
        Ok(state.objects.contains_key(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{rackspace, s3_high};
    use crate::pricing::PricingPolicy;
    use crate::sla::ProviderSla;
    use scalia_types::zone::{Zone, ZoneSet};

    fn store() -> SimulatedStore {
        SimulatedStore::new(s3_high(ProviderId::new(0)))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let s = store();
        s.put("a/b", Bytes::from_static(b"hello")).unwrap();
        assert!(s.exists("a/b").unwrap());
        assert_eq!(s.get("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.stored_bytes(), ByteSize::from_bytes(5));
        s.delete("a/b").unwrap();
        assert!(!s.exists("a/b").unwrap());
        assert_eq!(s.stored_bytes(), ByteSize::ZERO);
        // Missing get returns ChunkMissing.
        assert!(matches!(
            s.get("a/b").unwrap_err(),
            ScaliaError::ChunkMissing { .. }
        ));
        // Delete is idempotent.
        s.delete("a/b").unwrap();
    }

    #[test]
    fn overwrite_replaces_stored_bytes() {
        let s = store();
        s.put("k", Bytes::from(vec![0u8; 100])).unwrap();
        s.put("k", Bytes::from(vec![0u8; 40])).unwrap();
        assert_eq!(s.stored_bytes(), ByteSize::from_bytes(40));
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn list_filters_by_prefix() {
        let s = store();
        s.put("skey1.0", Bytes::from_static(b"x")).unwrap();
        s.put("skey1.1", Bytes::from_static(b"y")).unwrap();
        s.put("other.0", Bytes::from_static(b"z")).unwrap();
        let keys = s.list("skey1").unwrap();
        assert_eq!(keys, vec!["skey1.0".to_string(), "skey1.1".to_string()]);
        assert_eq!(s.list("").unwrap().len(), 3);
    }

    #[test]
    fn metering_tracks_bandwidth_and_ops() {
        let s = store();
        s.put("k", Bytes::from(vec![1u8; 1_000_000])).unwrap();
        s.get("k").unwrap();
        s.get("k").unwrap();
        let usage = s.usage();
        assert_eq!(usage.bw_in, ByteSize::from_mb(1));
        assert_eq!(usage.bw_out, ByteSize::from_mb(2));
        assert_eq!(usage.ops, 3);
        assert!(s.accrued_cost().is_positive());
    }

    #[test]
    fn tick_charges_storage_over_time() {
        let s = store();
        s.put("k", Bytes::from(vec![1u8; 1_000_000_000])).unwrap();
        s.tick(SimTime::from_hours(720));
        let usage = s.usage();
        assert!((usage.storage_gb_hours - 720.0).abs() < 1e-6);
        // 1 GB for a month at $0.14 plus 1 GB in at $0.10 plus 1 op.
        assert!((s.accrued_cost().dollars() - 0.24001).abs() < 1e-3);
        // Ticking backwards or to the same time charges nothing more.
        s.tick(SimTime::from_hours(700));
        s.tick(SimTime::from_hours(720));
        assert!((s.usage().storage_gb_hours - 720.0).abs() < 1e-6);
    }

    #[test]
    fn manual_failure_injection() {
        let s = store();
        s.put("k", Bytes::from_static(b"v")).unwrap();
        s.set_down(true);
        assert!(!s.is_up());
        assert!(matches!(
            s.get("k").unwrap_err(),
            ScaliaError::ProviderUnavailable(_)
        ));
        assert!(matches!(
            s.put("k2", Bytes::from_static(b"v")).unwrap_err(),
            ScaliaError::ProviderUnavailable(_)
        ));
        s.set_down(false);
        assert!(s.is_up());
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn scheduled_outage_follows_clock() {
        let s = SimulatedStore::with_outages(
            rackspace(ProviderId::new(2)),
            OutageSchedule::from_hours(&[(60, 120)]),
        );
        s.put("k", Bytes::from_static(b"v")).unwrap();
        s.tick(SimTime::from_hours(61));
        assert!(!s.is_up());
        assert!(s.get("k").is_err());
        s.tick(SimTime::from_hours(120));
        assert!(s.is_up());
        assert!(s.get("k").is_ok());
    }

    #[test]
    fn capacity_limit_enforced() {
        let descriptor = ProviderDescriptor::private(
            ProviderId::new(7),
            "nas",
            ProviderSla::from_percent(99.9, 99.5),
            PricingPolicy::free(),
            ZoneSet::of(&[Zone::EU]),
            ByteSize::from_bytes(150),
        );
        let s = SimulatedStore::new(descriptor);
        s.put("a", Bytes::from(vec![0u8; 100])).unwrap();
        assert!(matches!(
            s.put("b", Bytes::from(vec![0u8; 100])).unwrap_err(),
            ScaliaError::CapacityExceeded(_)
        ));
        // Overwriting the existing object within capacity is allowed.
        s.put("a", Bytes::from(vec![0u8; 150])).unwrap();
        assert_eq!(s.stored_bytes(), ByteSize::from_bytes(150));
    }
}
