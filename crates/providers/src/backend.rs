//! Simulated provider object stores.
//!
//! Each provider is backed by a [`SimulatedStore`]: an in-memory key/value
//! object store exposing the S3-like [`ObjectStore`] interface the Scalia
//! engine programs against, with:
//!
//! * request/bandwidth metering (feeding a [`BillingMeter`]),
//! * storage metering via an explicit [`SimulatedStore::tick`] that charges
//!   GB-hours for the bytes currently held,
//! * failure injection — an [`OutageSchedule`] plus a manual up/down switch —
//!   so the evaluation can take providers offline (§IV-E),
//! * a capacity limit for private resources,
//! * a deterministic response-time model ([`crate::latency::LatencyModel`],
//!   from the provider descriptor): every operation — including errors —
//!   reports a *virtual* latency in microseconds through the `timed_*`
//!   variants, recorded into per-operation histograms. Latencies are plain
//!   numbers by default so tests stay fast; [`SimulatedStore::set_real_sleep`]
//!   (or the `SCALIA_LATENCY_REAL_SLEEP` environment variable) makes the
//!   store actually sleep them, so benchmarks measure real wall-clock
//!   fan-out. [`SimulatedStore::set_stall_us`] injects an additive stall to
//!   model a limping provider.

use crate::billing::BillingMeter;
use crate::descriptor::ProviderDescriptor;
use crate::failure::OutageSchedule;
use crate::latency::salt_of;
use bytes::Bytes;
use parking_lot::Mutex;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::latency::{LatencyHistogram, LatencySnapshot};
use scalia_types::money::Money;
use scalia_types::size::ByteSize;
use scalia_types::time::SimTime;
use scalia_types::usage::ResourceUsage;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The S3-like interface every storage backend exposes.
pub trait ObjectStore: Send + Sync {
    /// The provider this store belongs to.
    fn provider_id(&self) -> ProviderId;

    /// Stores `data` under `key`, overwriting any previous value.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;

    /// Retrieves the value stored under `key`.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Deletes the value stored under `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;

    /// Lists all keys with the given prefix.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Returns `true` if a value is stored under `key`.
    fn exists(&self, key: &str) -> Result<bool>;
}

/// The operation classes a store records latency for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// Chunk uploads.
    Put,
    /// Chunk downloads.
    Get,
    /// Chunk deletions.
    Delete,
}

/// One latency histogram per [`StoreOp`] — the single place that maps an
/// operation class to its histogram (shared by the per-store recording here
/// and the deployment-wide object-level recording in the engine).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpLatencies {
    put: LatencyHistogram,
    get: LatencyHistogram,
    delete: LatencyHistogram,
}

impl OpLatencies {
    /// The histogram recording operations of class `op`.
    pub fn of(&mut self, op: StoreOp) -> &mut LatencyHistogram {
        match op {
            StoreOp::Put => &mut self.put,
            StoreOp::Get => &mut self.get,
            StoreOp::Delete => &mut self.delete,
        }
    }
}

struct StoreState {
    objects: BTreeMap<String, Bytes>,
    stored_bytes: ByteSize,
    meter: BillingMeter,
    latencies: OpLatencies,
    manually_down: bool,
    now: SimTime,
    last_tick: SimTime,
}

/// An in-memory, metered, failure-injectable object store for one provider.
pub struct SimulatedStore {
    descriptor: ProviderDescriptor,
    outages: OutageSchedule,
    state: Mutex<StoreState>,
    /// Additive virtual stall applied to every operation (limping provider).
    stall_us: AtomicU64,
    /// When set, operations really sleep their virtual latency (benches).
    real_sleep: AtomicBool,
    /// Transport-error storm: the next N operations fail with a retryable
    /// soft error while the provider is nominally up (chaos injection).
    soft_faults: AtomicU64,
}

impl SimulatedStore {
    /// Creates a store for the given provider with no scheduled outages.
    pub fn new(descriptor: ProviderDescriptor) -> Self {
        Self::with_outages(descriptor, OutageSchedule::always_up())
    }

    /// Creates a store with a pre-programmed outage schedule.
    pub fn with_outages(descriptor: ProviderDescriptor, outages: OutageSchedule) -> Self {
        let meter = BillingMeter::new(descriptor.pricing);
        let real_sleep = std::env::var("SCALIA_LATENCY_REAL_SLEEP")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        SimulatedStore {
            descriptor,
            outages,
            state: Mutex::new(StoreState {
                objects: BTreeMap::new(),
                stored_bytes: ByteSize::ZERO,
                meter,
                latencies: OpLatencies::default(),
                manually_down: false,
                now: SimTime::ZERO,
                last_tick: SimTime::ZERO,
            }),
            stall_us: AtomicU64::new(0),
            real_sleep: AtomicBool::new(real_sleep),
            soft_faults: AtomicU64::new(0),
        }
    }

    /// Creates a store wrapped in an [`Arc`] for sharing across engines.
    pub fn shared(descriptor: ProviderDescriptor) -> Arc<Self> {
        Arc::new(Self::new(descriptor))
    }

    /// The provider descriptor backing this store.
    pub fn descriptor(&self) -> &ProviderDescriptor {
        &self.descriptor
    }

    /// Manually takes the provider down (in addition to scheduled outages).
    pub fn set_down(&self, down: bool) {
        self.state.lock().manually_down = down;
    }

    /// Returns `true` if the provider is reachable right now.
    pub fn is_up(&self) -> bool {
        let state = self.state.lock();
        !state.manually_down && self.outages.is_up(state.now)
    }

    /// Advances the store's clock to `now`, charging storage GB-hours for
    /// the bytes held since the previous tick.
    pub fn tick(&self, now: SimTime) {
        let mut state = self.state.lock();
        if now <= state.last_tick {
            state.now = now;
            return;
        }
        let hours = now.since(state.last_tick).as_hours();
        let held = state.stored_bytes;
        state.meter.record_storage(held, hours);
        state.last_tick = now;
        state.now = now;
    }

    /// Bytes currently stored.
    pub fn stored_bytes(&self) -> ByteSize {
        self.state.lock().stored_bytes
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> usize {
        self.state.lock().objects.len()
    }

    /// Accumulated resource usage (bandwidth, operations, storage GB-hours).
    pub fn usage(&self) -> ResourceUsage {
        self.state.lock().meter.usage()
    }

    /// Accumulated cost under the provider's pricing policy.
    pub fn accrued_cost(&self) -> Money {
        self.state.lock().meter.total_cost()
    }

    /// Makes every operation really sleep its virtual latency (wall-clock
    /// mode for benchmarks; the default is virtual-only so tests stay fast).
    pub fn set_real_sleep(&self, enabled: bool) {
        self.real_sleep.store(enabled, Ordering::SeqCst);
    }

    /// Returns `true` if operations really sleep their virtual latency.
    pub fn real_sleep_enabled(&self) -> bool {
        self.real_sleep.load(Ordering::SeqCst)
    }

    /// Injects an additive virtual stall (microseconds) into every
    /// operation, modelling a limping provider. Zero clears the stall.
    pub fn set_stall_us(&self, us: u64) {
        self.stall_us.store(us, Ordering::SeqCst);
    }

    /// The currently injected stall, in microseconds.
    pub fn stall_us(&self) -> u64 {
        self.stall_us.load(Ordering::SeqCst)
    }

    /// Per-operation latency summary (virtual microseconds).
    pub fn latency_snapshot(&self, op: StoreOp) -> LatencySnapshot {
        self.state.lock().latencies.of(op).snapshot()
    }

    /// The virtual latency of one operation: the descriptor's model sampled
    /// for this key and payload, plus any injected stall. Errors pay the
    /// base round-trip (`bytes = 0`).
    fn latency_us(&self, key: &str, bytes: u64) -> u64 {
        self.descriptor.latency.sample_us(bytes, salt_of(key)) + self.stall_us()
    }

    /// Records the operation's latency and, in real-sleep mode, sleeps it.
    /// Called with the state lock *held* for recording; the sleep happens
    /// after the caller has released the lock (see `finish_op`).
    fn record_latency(state: &mut StoreState, op: StoreOp, us: u64) {
        state.latencies.of(op).record(us);
    }

    /// Completes a timed operation outside the state lock: really sleeps
    /// the virtual latency when real-sleep mode is on.
    fn finish_op(&self, us: u64) {
        if us > 0 && self.real_sleep_enabled() {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Starts a transport-error storm: the next `ops` operations fail with a
    /// retryable [`ScaliaError::Internal`] error while the provider remains
    /// nominally up — feeding the failure detector's count-to-threshold path
    /// rather than the immediate `ProviderUnavailable` path. Zero clears any
    /// remaining storm.
    pub fn inject_transport_errors(&self, ops: u64) {
        self.soft_faults.store(ops, Ordering::SeqCst);
    }

    /// Operations still covered by an injected transport-error storm.
    pub fn pending_transport_errors(&self) -> u64 {
        self.soft_faults.load(Ordering::SeqCst)
    }

    fn check_up(&self, state: &StoreState) -> Result<()> {
        if state.manually_down || self.outages.is_down(state.now) {
            return Err(ScaliaError::ProviderUnavailable(self.descriptor.id));
        }
        // Consume one storm token per operation: the request dies on the
        // wire before it is billed or applied.
        if self
            .soft_faults
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(ScaliaError::Internal(format!(
                "injected transport error at {}",
                self.descriptor.id
            )));
        }
        Ok(())
    }
}

impl SimulatedStore {
    /// [`ObjectStore::put`] returning the operation's virtual latency in
    /// microseconds alongside the result. Errors pay the base round-trip.
    pub fn timed_put(&self, key: &str, data: Bytes) -> (Result<()>, u64) {
        let payload = data.len() as u64;
        let (result, us) = {
            let mut state = self.state.lock();
            let result = self.put_locked(&mut state, key, data);
            let us = self.latency_us(key, if result.is_ok() { payload } else { 0 });
            Self::record_latency(&mut state, StoreOp::Put, us);
            (result, us)
        };
        self.finish_op(us);
        (result, us)
    }

    /// [`ObjectStore::get`] returning the operation's virtual latency in
    /// microseconds alongside the result.
    pub fn timed_get(&self, key: &str) -> (Result<Bytes>, u64) {
        let (result, us) = {
            let mut state = self.state.lock();
            let result = self.get_locked(&mut state, key);
            let payload = result.as_ref().map(|d| d.len() as u64).unwrap_or(0);
            let us = self.latency_us(key, payload);
            Self::record_latency(&mut state, StoreOp::Get, us);
            (result, us)
        };
        self.finish_op(us);
        (result, us)
    }

    /// [`ObjectStore::delete`] returning the operation's virtual latency in
    /// microseconds alongside the result.
    pub fn timed_delete(&self, key: &str) -> (Result<()>, u64) {
        let (result, us) = {
            let mut state = self.state.lock();
            let result = self.delete_locked(&mut state, key);
            let us = self.latency_us(key, 0);
            Self::record_latency(&mut state, StoreOp::Delete, us);
            (result, us)
        };
        self.finish_op(us);
        (result, us)
    }

    fn put_locked(&self, state: &mut StoreState, key: &str, data: Bytes) -> Result<()> {
        self.check_up(state)?;
        let new_size = ByteSize::from_bytes(data.len() as u64);

        // Enforce capacity for private resources ("will never grow beyond
        // the limit set in the properties of the resource", §III-E).
        if let Some(capacity) = self.descriptor.capacity {
            let existing = state
                .objects
                .get(key)
                .map(|old| ByteSize::from_bytes(old.len() as u64))
                .unwrap_or(ByteSize::ZERO);
            let projected = state.stored_bytes.saturating_sub(existing) + new_size;
            if projected > capacity {
                // The rejected request still counts as an operation.
                state.meter.record(ResourceUsage::operations(1));
                return Err(ScaliaError::CapacityExceeded(self.descriptor.id));
            }
        }

        state.meter.record_put(new_size);
        if let Some(old) = state.objects.insert(key.to_string(), data) {
            state.stored_bytes = state
                .stored_bytes
                .saturating_sub(ByteSize::from_bytes(old.len() as u64));
        }
        state.stored_bytes += new_size;
        Ok(())
    }

    fn get_locked(&self, state: &mut StoreState, key: &str) -> Result<Bytes> {
        self.check_up(state)?;
        match state.objects.get(key).cloned() {
            Some(data) => {
                state
                    .meter
                    .record_get(ByteSize::from_bytes(data.len() as u64));
                Ok(data)
            }
            None => {
                state.meter.record(ResourceUsage::operations(1));
                Err(ScaliaError::ChunkMissing {
                    provider: self.descriptor.id,
                    chunk_key: key.to_string(),
                })
            }
        }
    }

    fn delete_locked(&self, state: &mut StoreState, key: &str) -> Result<()> {
        self.check_up(state)?;
        state.meter.record_delete();
        if let Some(old) = state.objects.remove(key) {
            state.stored_bytes = state
                .stored_bytes
                .saturating_sub(ByteSize::from_bytes(old.len() as u64));
        }
        Ok(())
    }
}

impl ObjectStore for SimulatedStore {
    fn provider_id(&self) -> ProviderId {
        self.descriptor.id
    }

    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.timed_put(key, data).0
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.timed_get(key).0
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.timed_delete(key).0
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        state.meter.record(ResourceUsage::operations(1));
        Ok(state
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        let mut state = self.state.lock();
        self.check_up(&state)?;
        state.meter.record(ResourceUsage::operations(1));
        Ok(state.objects.contains_key(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{rackspace, s3_high};
    use crate::pricing::PricingPolicy;
    use crate::sla::ProviderSla;
    use scalia_types::zone::{Zone, ZoneSet};

    fn store() -> SimulatedStore {
        SimulatedStore::new(s3_high(ProviderId::new(0)))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let s = store();
        s.put("a/b", Bytes::from_static(b"hello")).unwrap();
        assert!(s.exists("a/b").unwrap());
        assert_eq!(s.get("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.stored_bytes(), ByteSize::from_bytes(5));
        s.delete("a/b").unwrap();
        assert!(!s.exists("a/b").unwrap());
        assert_eq!(s.stored_bytes(), ByteSize::ZERO);
        // Missing get returns ChunkMissing.
        assert!(matches!(
            s.get("a/b").unwrap_err(),
            ScaliaError::ChunkMissing { .. }
        ));
        // Delete is idempotent.
        s.delete("a/b").unwrap();
    }

    #[test]
    fn overwrite_replaces_stored_bytes() {
        let s = store();
        s.put("k", Bytes::from(vec![0u8; 100])).unwrap();
        s.put("k", Bytes::from(vec![0u8; 40])).unwrap();
        assert_eq!(s.stored_bytes(), ByteSize::from_bytes(40));
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn list_filters_by_prefix() {
        let s = store();
        s.put("skey1.0", Bytes::from_static(b"x")).unwrap();
        s.put("skey1.1", Bytes::from_static(b"y")).unwrap();
        s.put("other.0", Bytes::from_static(b"z")).unwrap();
        let keys = s.list("skey1").unwrap();
        assert_eq!(keys, vec!["skey1.0".to_string(), "skey1.1".to_string()]);
        assert_eq!(s.list("").unwrap().len(), 3);
    }

    #[test]
    fn metering_tracks_bandwidth_and_ops() {
        let s = store();
        s.put("k", Bytes::from(vec![1u8; 1_000_000])).unwrap();
        s.get("k").unwrap();
        s.get("k").unwrap();
        let usage = s.usage();
        assert_eq!(usage.bw_in, ByteSize::from_mb(1));
        assert_eq!(usage.bw_out, ByteSize::from_mb(2));
        assert_eq!(usage.ops, 3);
        assert!(s.accrued_cost().is_positive());
    }

    #[test]
    fn tick_charges_storage_over_time() {
        let s = store();
        s.put("k", Bytes::from(vec![1u8; 1_000_000_000])).unwrap();
        s.tick(SimTime::from_hours(720));
        let usage = s.usage();
        assert!((usage.storage_gb_hours - 720.0).abs() < 1e-6);
        // 1 GB for a month at $0.14 plus 1 GB in at $0.10 plus 1 op.
        assert!((s.accrued_cost().dollars() - 0.24001).abs() < 1e-3);
        // Ticking backwards or to the same time charges nothing more.
        s.tick(SimTime::from_hours(700));
        s.tick(SimTime::from_hours(720));
        assert!((s.usage().storage_gb_hours - 720.0).abs() < 1e-6);
    }

    #[test]
    fn manual_failure_injection() {
        let s = store();
        s.put("k", Bytes::from_static(b"v")).unwrap();
        s.set_down(true);
        assert!(!s.is_up());
        assert!(matches!(
            s.get("k").unwrap_err(),
            ScaliaError::ProviderUnavailable(_)
        ));
        assert!(matches!(
            s.put("k2", Bytes::from_static(b"v")).unwrap_err(),
            ScaliaError::ProviderUnavailable(_)
        ));
        s.set_down(false);
        assert!(s.is_up());
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn scheduled_outage_follows_clock() {
        let s = SimulatedStore::with_outages(
            rackspace(ProviderId::new(2)),
            OutageSchedule::from_hours(&[(60, 120)]),
        );
        s.put("k", Bytes::from_static(b"v")).unwrap();
        s.tick(SimTime::from_hours(61));
        assert!(!s.is_up());
        assert!(s.get("k").is_err());
        s.tick(SimTime::from_hours(120));
        assert!(s.is_up());
        assert!(s.get("k").is_ok());
    }

    #[test]
    fn timed_ops_report_model_latency_deterministically() {
        use crate::latency::LatencyModel;
        // 10 ms RTT, 1 MB/s, no jitter: a 1 MB get takes 10 ms + 1 s.
        let descriptor = s3_high(ProviderId::new(0)).with_latency(LatencyModel::new(10, 1, 0, 42));
        let s = SimulatedStore::new(descriptor);
        let (put_result, put_us) = s.timed_put("k", Bytes::from(vec![0u8; 1_000_000]));
        put_result.unwrap();
        assert_eq!(put_us, 10_000 + 1_000_000);
        let (get_result, get_us) = s.timed_get("k");
        get_result.unwrap();
        assert_eq!(get_us, put_us, "same key, same payload, same latency");
        // A repeated request reproduces exactly.
        assert_eq!(s.timed_get("k").1, get_us);
        // Errors pay the base round-trip only.
        let (missing, err_us) = s.timed_get("nope");
        assert!(missing.is_err());
        assert_eq!(err_us, 10_000);
        // Histograms saw every operation.
        assert_eq!(s.latency_snapshot(StoreOp::Get).count, 3);
        assert_eq!(s.latency_snapshot(StoreOp::Put).count, 1);
        assert_eq!(s.latency_snapshot(StoreOp::Delete).count, 0);
    }

    #[test]
    fn zero_model_keeps_operations_instantaneous() {
        let s = store();
        let (result, us) = s.timed_put("k", Bytes::from_static(b"v"));
        result.unwrap();
        assert_eq!(us, 0, "default catalog must stay latency-free");
        assert_eq!(s.timed_get("k").1, 0);
    }

    #[test]
    fn stall_injection_adds_to_every_operation() {
        let s = store();
        s.set_stall_us(50_000);
        assert_eq!(s.stall_us(), 50_000);
        let (_, us) = s.timed_put("k", Bytes::from_static(b"v"));
        assert_eq!(us, 50_000);
        // Down providers stall too (the connection attempt hangs).
        s.set_down(true);
        let (result, err_us) = s.timed_get("k");
        assert!(result.is_err());
        assert_eq!(err_us, 50_000);
        s.set_stall_us(0);
        s.set_down(false);
        assert_eq!(s.timed_get("k").1, 0);
    }

    #[test]
    fn real_sleep_mode_actually_sleeps() {
        use crate::latency::LatencyModel;
        let descriptor = s3_high(ProviderId::new(0)).with_latency(LatencyModel::new(5, 0, 0, 0));
        let s = SimulatedStore::new(descriptor);
        s.set_real_sleep(true);
        assert!(s.real_sleep_enabled());
        let started = std::time::Instant::now();
        s.put("k", Bytes::from_static(b"v")).unwrap();
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(5),
            "real-sleep mode must pay the modelled latency in wall-clock time"
        );
        s.set_real_sleep(false);
    }

    #[test]
    fn transport_storm_fails_exactly_n_ops_then_clears() {
        let s = store();
        s.put("k", Bytes::from_static(b"v")).unwrap();
        s.inject_transport_errors(3);
        assert_eq!(s.pending_transport_errors(), 3);
        assert!(s.is_up(), "storming provider stays nominally up");
        for _ in 0..3 {
            assert!(matches!(s.get("k").unwrap_err(), ScaliaError::Internal(_)));
        }
        assert_eq!(s.pending_transport_errors(), 0);
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"v"));
        // Storms gate every operation class, and zero clears them early.
        s.inject_transport_errors(10);
        assert!(s.put("k2", Bytes::from_static(b"w")).is_err());
        assert!(s.delete("k").is_err());
        assert!(s.exists("k").is_err());
        s.inject_transport_errors(0);
        assert!(s.exists("k").unwrap());
    }

    #[test]
    fn capacity_limit_enforced() {
        let descriptor = ProviderDescriptor::private(
            ProviderId::new(7),
            "nas",
            ProviderSla::from_percent(99.9, 99.5),
            PricingPolicy::free(),
            ZoneSet::of(&[Zone::EU]),
            ByteSize::from_bytes(150),
        );
        let s = SimulatedStore::new(descriptor);
        s.put("a", Bytes::from(vec![0u8; 100])).unwrap();
        assert!(matches!(
            s.put("b", Bytes::from(vec![0u8; 100])).unwrap_err(),
            ScaliaError::CapacityExceeded(_)
        ));
        // Overwriting the existing object within capacity is allowed.
        s.put("a", Bytes::from(vec![0u8; 150])).unwrap();
        assert_eq!(s.stored_bytes(), ByteSize::from_bytes(150));
    }
}
