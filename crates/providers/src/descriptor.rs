//! Provider descriptors.
//!
//! A [`ProviderDescriptor`] is everything the placement engine needs to know
//! about a storage provider: identity, whether it is a public cloud or a
//! private resource, SLA, pricing, zones of operation, optional chunk-size
//! constraint and optional capacity (for private resources).

use crate::latency::LatencyModel;
use crate::pricing::PricingPolicy;
use crate::sla::ProviderSla;
use scalia_types::ids::ProviderId;
use scalia_types::size::ByteSize;
use scalia_types::zone::ZoneSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a provider is a public cloud or a corporate private resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProviderKind {
    /// A public cloud storage provider (billed per use).
    PublicCloud,
    /// A corporate-owned private storage resource (capacity-limited).
    Private,
}

/// Full description of a storage provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderDescriptor {
    /// Stable identifier within the catalog.
    pub id: ProviderId,
    /// Short display name, e.g. `"S3(h)"`.
    pub name: String,
    /// Longer description, e.g. `"Amazon S3 (High)"`.
    pub description: String,
    /// Public cloud or private resource.
    pub kind: ProviderKind,
    /// Advertised durability/availability SLA.
    pub sla: ProviderSla,
    /// Pricing policy.
    pub pricing: PricingPolicy,
    /// Zones the provider operates in.
    pub zones: ZoneSet,
    /// Maximum size of a single stored chunk, if the provider constrains it
    /// (§III-A2: "Provider constraints in chunk size are taken into account").
    pub max_chunk_size: Option<ByteSize>,
    /// Total capacity, for private resources (`None` = effectively unlimited).
    pub capacity: Option<ByteSize>,
    /// Deterministic response-time model of the provider's data path
    /// (defaults to [`LatencyModel::ZERO`]: instantaneous).
    pub latency: LatencyModel,
    /// Observed per-chunk read latency summary (typically a windowed p95 of
    /// real GET round-trips), in microseconds. `None` until enough samples
    /// accumulate; when set it overrides the advertised model in
    /// [`ProviderDescriptor::read_latency_us`], so placement and hedging
    /// trust what the provider *does* over what its descriptor claims.
    pub observed_read_latency_us: Option<u64>,
}

impl ProviderDescriptor {
    /// Creates a public-cloud provider descriptor with no chunk-size or
    /// capacity constraint.
    pub fn public(
        id: ProviderId,
        name: impl Into<String>,
        description: impl Into<String>,
        sla: ProviderSla,
        pricing: PricingPolicy,
        zones: ZoneSet,
    ) -> Self {
        ProviderDescriptor {
            id,
            name: name.into(),
            description: description.into(),
            kind: ProviderKind::PublicCloud,
            sla,
            pricing,
            zones,
            max_chunk_size: None,
            capacity: None,
            latency: LatencyModel::ZERO,
            observed_read_latency_us: None,
        }
    }

    /// Creates a private-resource descriptor with a capacity limit.
    pub fn private(
        id: ProviderId,
        name: impl Into<String>,
        sla: ProviderSla,
        pricing: PricingPolicy,
        zones: ZoneSet,
        capacity: ByteSize,
    ) -> Self {
        ProviderDescriptor {
            id,
            name: name.into(),
            description: "private storage resource".into(),
            kind: ProviderKind::Private,
            sla,
            pricing,
            zones,
            max_chunk_size: None,
            capacity: Some(capacity),
            latency: LatencyModel::ZERO,
            observed_read_latency_us: None,
        }
    }

    /// Builder-style override of the chunk-size constraint.
    pub fn with_max_chunk_size(mut self, size: ByteSize) -> Self {
        self.max_chunk_size = Some(size);
        self
    }

    /// Builder-style override of the provider's latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style override of the observed read-latency summary.
    pub fn with_observed_read_latency_us(mut self, observed: Option<u64>) -> Self {
        self.observed_read_latency_us = observed;
        self
    }

    /// The provider's expected latency for reading one chunk of
    /// `chunk_bytes` bytes, in microseconds: the observed summary when one
    /// exists, otherwise the advertised model's jitter-free expectation.
    /// This is the latency the cost model prices and the hedged read ranks
    /// by.
    pub fn read_latency_us(&self, chunk_bytes: u64) -> u64 {
        match self.observed_read_latency_us {
            Some(observed) => observed,
            None => self.latency.expected_us(chunk_bytes),
        }
    }

    /// Returns `true` if the provider can hold a chunk of the given size.
    pub fn accepts_chunk(&self, chunk_size: ByteSize) -> bool {
        match self.max_chunk_size {
            Some(max) => chunk_size <= max,
            None => true,
        }
    }

    /// Returns `true` if this is a private resource.
    pub fn is_private(&self) -> bool {
        self.kind == ProviderKind::Private
    }
}

impl fmt::Display for ProviderDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] dur {} avail {} zones [{}] storage {}/GB-month",
            self.name,
            self.id,
            self.sla.durability,
            self.sla.availability,
            self.zones,
            self.pricing.storage_gb_month
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalia_types::zone::Zone;

    fn sample() -> ProviderDescriptor {
        ProviderDescriptor::public(
            ProviderId::new(0),
            "S3(h)",
            "Amazon S3 (High)",
            ProviderSla::from_percent(99.999999999, 99.9),
            PricingPolicy::from_dollars(0.14, 0.1, 0.15, 0.01),
            ZoneSet::of(&[Zone::EU, Zone::US, Zone::APAC]),
        )
    }

    #[test]
    fn public_provider_has_no_capacity_limit() {
        let p = sample();
        assert_eq!(p.kind, ProviderKind::PublicCloud);
        assert!(!p.is_private());
        assert!(p.capacity.is_none());
        assert!(p.accepts_chunk(ByteSize::from_gb(100)));
    }

    #[test]
    fn chunk_size_constraint() {
        let p = sample().with_max_chunk_size(ByteSize::from_mb(5));
        assert!(p.accepts_chunk(ByteSize::from_mb(5)));
        assert!(p.accepts_chunk(ByteSize::from_kb(1)));
        assert!(!p.accepts_chunk(ByteSize::from_mb(6)));
    }

    #[test]
    fn private_resource_descriptor() {
        let p = ProviderDescriptor::private(
            ProviderId::new(9),
            "nas-1",
            ProviderSla::from_percent(99.99, 99.5),
            PricingPolicy::free(),
            ZoneSet::of(&[Zone::EU]),
            ByteSize::from_gb(10),
        );
        assert!(p.is_private());
        assert_eq!(p.capacity, Some(ByteSize::from_gb(10)));
    }

    #[test]
    fn latency_model_defaults_to_zero_and_is_overridable() {
        let p = sample();
        assert!(
            p.latency.is_zero(),
            "catalog default must stay latency-free"
        );
        let slow = sample().with_latency(LatencyModel::slow(3));
        assert!(!slow.latency.is_zero());
        assert!(slow.latency.expected_us(0) > 0);
    }

    #[test]
    fn observed_latency_overrides_the_advertised_model() {
        let p = sample().with_latency(LatencyModel::new(30, 0, 0, 1));
        assert_eq!(p.observed_read_latency_us, None);
        assert_eq!(p.read_latency_us(1_000), 30_000, "modelled fallback");
        let observed = p.with_observed_read_latency_us(Some(250_000));
        assert_eq!(
            observed.read_latency_us(1_000),
            250_000,
            "observation beats the advertisement"
        );
        assert_eq!(
            observed
                .with_observed_read_latency_us(None)
                .read_latency_us(1_000),
            30_000,
            "forgiveness restores the model"
        );
    }

    #[test]
    fn display_contains_name_and_prices() {
        let s = sample().to_string();
        assert!(s.contains("S3(h)"));
        assert!(s.contains("99.9%"));
    }
}
