//! # scalia-providers
//!
//! The cloud-storage-provider substrate of the Scalia reproduction.
//!
//! The paper evaluates Scalia over five public providers (Amazon S3 high and
//! low durability, Rackspace CloudFiles, Microsoft Azure, Google Storage —
//! its Fig. 3) plus, in §IV-D, a hypothetical cheaper provider "CheapStor",
//! and supports registering corporate *private storage resources* (§III-E).
//!
//! Because the evaluation is entirely cost-driven (and the paper itself uses
//! a simulator), this crate provides:
//!
//! * [`pricing`] — per-GB / per-operation pricing policies.
//! * [`sla`] — durability/availability SLAs.
//! * [`descriptor`] — the full description of a provider (pricing, SLA,
//!   zones, chunk-size constraints, capacity for private resources).
//! * [`catalog`] — the provider catalog, including the exact Fig. 3 catalog.
//! * [`backend`] — an in-memory, metered, failure-injectable object store
//!   per provider implementing an S3-like `put/get/delete/list` interface.
//! * [`billing`] — billing meters translating metered resource usage into
//!   money using a provider's pricing policy.
//! * [`private`] — private storage resources: capacity-limited backends
//!   fronted by an HMAC-signed request check with replay protection,
//!   mirroring the paper's standalone web-service design.
//! * [`failure`] — outage schedules used by the evaluation's transient
//!   failure scenario (§IV-E).
//! * [`latency`] — deterministic per-provider response-time models (seeded
//!   base RTT + throughput + jitter) driving the simulated data path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod billing;
pub mod catalog;
pub mod descriptor;
pub mod failure;
pub mod latency;
pub mod pricing;
pub mod private;
pub mod sla;

pub use backend::{ObjectStore, SimulatedStore};
pub use billing::BillingMeter;
pub use catalog::ProviderCatalog;
pub use descriptor::{ProviderDescriptor, ProviderKind};
pub use failure::{FaultPlan, OutageSchedule};
pub use latency::LatencyModel;
pub use pricing::PricingPolicy;
pub use private::PrivateResource;
pub use sla::ProviderSla;

/// Commonly used items.
pub mod prelude {
    pub use crate::backend::{ObjectStore, SimulatedStore};
    pub use crate::billing::BillingMeter;
    pub use crate::catalog::ProviderCatalog;
    pub use crate::descriptor::{ProviderDescriptor, ProviderKind};
    pub use crate::failure::OutageSchedule;
    pub use crate::latency::LatencyModel;
    pub use crate::pricing::PricingPolicy;
    pub use crate::private::PrivateResource;
    pub use crate::sla::ProviderSla;
}
