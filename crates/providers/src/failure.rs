//! Outage schedules and deterministic fault plans for failure injection.
//!
//! The evaluation's active-repair scenario (§IV-E) takes one provider down
//! between hour 60 and hour 120. An [`OutageSchedule`] expresses such
//! transient failures as a list of half-open time windows and answers the
//! question "is the provider up at time t?".
//!
//! Beyond whole-provider outages, the chaos harness needs *surgical* faults
//! that reproduce bit-for-bit from a seed:
//!
//! * **Crash points** — named code locations (e.g. `journal::logged`) armed
//!   through a [`FaultPlan`]. When execution reaches an armed label the
//!   caller aborts the operation exactly there, simulating a process crash
//!   with no cleanup. Each armed point fires once and records itself in
//!   [`FaultPlan::fired`].
//! * **Transport-error storms** — a provider answers its next *N* requests
//!   with a retryable transport error while nominally up, feeding the
//!   failure detector's count-to-threshold path (injected per backend, see
//!   `SimulatedStore::inject_transport_errors`). A [`FaultPlan`] carries the
//!   storm specs so a whole chaos scenario is described by one plan object.
//! * **Torn operations** — a crash point armed *inside* a multi-step
//!   mutation (between journal apply steps) leaves the operation half done;
//!   recovery must complete or discard it, never leave the torn state.

use scalia_types::ids::ProviderId;
use scalia_types::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A single outage window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Time the provider becomes unreachable.
    pub start: SimTime,
    /// Time the provider recovers.
    pub end: SimTime,
}

/// A schedule of transient outages for one provider.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutageSchedule {
    windows: Vec<OutageWindow>,
}

impl OutageSchedule {
    /// A schedule with no outages.
    pub fn always_up() -> Self {
        OutageSchedule::default()
    }

    /// Creates a schedule from a list of `(start_hour, end_hour)` pairs.
    pub fn from_hours(windows: &[(u64, u64)]) -> Self {
        let mut schedule = OutageSchedule::default();
        for &(start, end) in windows {
            schedule.add_window(SimTime::from_hours(start), SimTime::from_hours(end));
        }
        schedule
    }

    /// Adds an outage window. Windows where `end <= start` are ignored.
    pub fn add_window(&mut self, start: SimTime, end: SimTime) {
        if end > start {
            self.windows.push(OutageWindow { start, end });
        }
    }

    /// Returns `true` if the provider is reachable at `time`.
    pub fn is_up(&self, time: SimTime) -> bool {
        !self.windows.iter().any(|w| time >= w.start && time < w.end)
    }

    /// Returns `true` if the provider is down at `time`.
    pub fn is_down(&self, time: SimTime) -> bool {
        !self.is_up(time)
    }

    /// The scheduled outage windows.
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// The next transition time (outage start or end) strictly after `time`,
    /// if any. The simulator uses it to know when availability state changes.
    pub fn next_transition(&self, time: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .flat_map(|w| [w.start, w.end])
            .filter(|&t| t > time)
            .min()
    }
}

/// A transport-error storm: one provider fails its next `ops` requests with
/// a retryable error while remaining nominally up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Provider the storm targets.
    pub provider: ProviderId,
    /// Number of consecutive requests that fail.
    pub ops: u32,
}

/// A deterministic chaos plan: armed crash points plus transport-error
/// storms, shared (behind an `Arc`) between the harness and the system under
/// test.
///
/// Crash points are identified by string labels. Arming a label with
/// [`FaultPlan::arm`] makes the next visit fire; [`FaultPlan::arm_after`]
/// skips the first `skip` visits so a later occurrence of the same label can
/// be targeted. A fired point is disarmed (crashes are one-shot) and
/// remembered, so a scenario can assert exactly which faults triggered.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Label → remaining visits to skip before firing (0 = fire next visit).
    armed: Mutex<BTreeMap<String, u32>>,
    /// Labels that fired, in firing order.
    fired: Mutex<Vec<String>>,
    /// Storms to apply to backends before the scenario runs.
    storms: Mutex<Vec<StormSpec>>,
}

impl FaultPlan {
    /// An empty plan: nothing armed, nothing fires.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `label` to fire on its next visit.
    pub fn arm(&self, label: impl Into<String>) {
        self.arm_after(label, 0);
    }

    /// Arms `label` to fire on its `(skip + 1)`-th visit.
    pub fn arm_after(&self, label: impl Into<String>, skip: u32) {
        self.armed.lock().unwrap().insert(label.into(), skip);
    }

    /// Visits a crash point. Returns `true` exactly when the armed countdown
    /// for `label` reaches zero — the caller must then abandon the operation
    /// in place (no cleanup), simulating a crash. Unarmed labels are free.
    pub fn check(&self, label: &str) -> bool {
        let mut armed = self.armed.lock().unwrap();
        match armed.get_mut(label) {
            None => false,
            Some(skip) if *skip > 0 => {
                *skip -= 1;
                false
            }
            Some(_) => {
                armed.remove(label);
                self.fired.lock().unwrap().push(label.to_string());
                true
            }
        }
    }

    /// Labels that fired so far, in order.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().unwrap().clone()
    }

    /// Number of crash points still armed (not yet fired).
    pub fn armed_count(&self) -> usize {
        self.armed.lock().unwrap().len()
    }

    /// Adds a transport-error storm to the plan.
    pub fn add_storm(&self, provider: ProviderId, ops: u32) {
        self.storms
            .lock()
            .unwrap()
            .push(StormSpec { provider, ops });
    }

    /// Drains the planned storms (the harness applies them to backends).
    pub fn take_storms(&self) -> Vec<StormSpec> {
        std::mem::take(&mut *self.storms.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_up_schedule() {
        let s = OutageSchedule::always_up();
        assert!(s.is_up(SimTime::ZERO));
        assert!(s.is_up(SimTime::from_hours(10_000)));
        assert!(s.next_transition(SimTime::ZERO).is_none());
    }

    #[test]
    fn paper_repair_scenario_window() {
        // S3(l) down from hour 60 to hour 120.
        let s = OutageSchedule::from_hours(&[(60, 120)]);
        assert!(s.is_up(SimTime::from_hours(59)));
        assert!(s.is_down(SimTime::from_hours(60)));
        assert!(s.is_down(SimTime::from_hours(119)));
        assert!(s.is_up(SimTime::from_hours(120)));
        assert!(s.is_up(SimTime::from_hours(180)));
    }

    #[test]
    fn multiple_windows_and_transitions() {
        let s = OutageSchedule::from_hours(&[(10, 20), (30, 40)]);
        assert!(s.is_down(SimTime::from_hours(15)));
        assert!(s.is_up(SimTime::from_hours(25)));
        assert!(s.is_down(SimTime::from_hours(35)));
        assert_eq!(
            s.next_transition(SimTime::ZERO),
            Some(SimTime::from_hours(10))
        );
        assert_eq!(
            s.next_transition(SimTime::from_hours(10)),
            Some(SimTime::from_hours(20))
        );
        assert_eq!(
            s.next_transition(SimTime::from_hours(25)),
            Some(SimTime::from_hours(30))
        );
        assert_eq!(s.next_transition(SimTime::from_hours(40)), None);
    }

    #[test]
    fn degenerate_windows_are_ignored() {
        let mut s = OutageSchedule::always_up();
        s.add_window(SimTime::from_hours(10), SimTime::from_hours(10));
        s.add_window(SimTime::from_hours(20), SimTime::from_hours(15));
        assert_eq!(s.windows().len(), 0);
        assert!(s.is_up(SimTime::from_hours(10)));
        assert!(s.next_transition(SimTime::ZERO).is_none());
    }

    #[test]
    fn boundary_semantics_are_half_open() {
        // [start, end): down at exactly `start`, up at exactly `end`.
        let s = OutageSchedule::from_hours(&[(10, 20)]);
        assert!(s.is_up(SimTime::from_secs(10 * 3600 - 1)));
        assert!(s.is_down(SimTime::from_hours(10)), "t == start is down");
        assert!(s.is_down(SimTime::from_secs(20 * 3600 - 1)));
        assert!(s.is_up(SimTime::from_hours(20)), "t == end is up");
        // A one-second outage still obeys both boundaries.
        let tiny = OutageSchedule::from_hours(&[(5, 5)]);
        assert!(tiny.is_up(SimTime::from_hours(5)), "empty window ignored");
        let mut one_sec = OutageSchedule::always_up();
        one_sec.add_window(SimTime::from_secs(100), SimTime::from_secs(101));
        assert!(one_sec.is_up(SimTime::from_secs(99)));
        assert!(one_sec.is_down(SimTime::from_secs(100)));
        assert!(one_sec.is_up(SimTime::from_secs(101)));
    }

    #[test]
    fn overlapping_windows_union_their_downtime() {
        // (10,30) and (20,40) overlap; (40,50) is adjacent to the union.
        let s = OutageSchedule::from_hours(&[(10, 30), (20, 40), (40, 50)]);
        assert!(s.is_up(SimTime::from_hours(9)));
        for hour in 10..50 {
            assert!(s.is_down(SimTime::from_hours(hour)), "hour {hour}");
        }
        assert!(s.is_up(SimTime::from_hours(50)));
        // Transitions inside the overlapped span still enumerate every
        // window edge (callers re-evaluate `is_up`, so interior edges are
        // harmless — but none may be *missed*).
        assert_eq!(
            s.next_transition(SimTime::from_hours(9)),
            Some(SimTime::from_hours(10))
        );
        assert_eq!(
            s.next_transition(SimTime::from_hours(45)),
            Some(SimTime::from_hours(50))
        );
        assert_eq!(s.next_transition(SimTime::from_hours(50)), None);
    }

    #[test]
    fn crash_points_fire_once_and_record() {
        let plan = FaultPlan::new();
        plan.arm("journal::logged");
        assert!(!plan.check("journal::applied"), "unarmed label is free");
        assert!(plan.check("journal::logged"), "armed label fires");
        assert!(!plan.check("journal::logged"), "fired label is disarmed");
        assert_eq!(plan.fired(), vec!["journal::logged".to_string()]);
        assert_eq!(plan.armed_count(), 0);
    }

    #[test]
    fn arm_after_skips_early_visits() {
        let plan = FaultPlan::new();
        plan.arm_after("put::uploaded", 2);
        assert!(!plan.check("put::uploaded"));
        assert!(!plan.check("put::uploaded"));
        assert!(plan.check("put::uploaded"), "fires on the third visit");
        assert!(plan.fired().contains(&"put::uploaded".to_string()));
    }

    #[test]
    fn storms_accumulate_and_drain() {
        let plan = FaultPlan::new();
        plan.add_storm(ProviderId::new(2), 5);
        plan.add_storm(ProviderId::new(3), 1);
        let storms = plan.take_storms();
        assert_eq!(storms.len(), 2);
        assert_eq!(storms[0].provider, ProviderId::new(2));
        assert_eq!(storms[0].ops, 5);
        assert!(plan.take_storms().is_empty(), "draining empties the plan");
    }

    #[test]
    fn identical_and_nested_windows() {
        // Duplicated and fully-nested windows must not distort the schedule.
        let s = OutageSchedule::from_hours(&[(10, 20), (10, 20), (12, 15)]);
        assert!(s.is_down(SimTime::from_hours(12)));
        assert!(s.is_down(SimTime::from_hours(19)));
        assert!(s.is_up(SimTime::from_hours(20)));
        // A flap: down, up for one hour, down again.
        let flap = OutageSchedule::from_hours(&[(10, 20), (21, 30)]);
        assert!(flap.is_down(SimTime::from_hours(19)));
        assert!(flap.is_up(SimTime::from_hours(20)));
        assert!(flap.is_down(SimTime::from_hours(21)));
        assert_eq!(
            flap.next_transition(SimTime::from_hours(20)),
            Some(SimTime::from_hours(21))
        );
    }
}
