//! Outage schedules for failure injection.
//!
//! The evaluation's active-repair scenario (§IV-E) takes one provider down
//! between hour 60 and hour 120. An [`OutageSchedule`] expresses such
//! transient failures as a list of half-open time windows and answers the
//! question "is the provider up at time t?".

use scalia_types::time::SimTime;
use serde::{Deserialize, Serialize};

/// A single outage window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Time the provider becomes unreachable.
    pub start: SimTime,
    /// Time the provider recovers.
    pub end: SimTime,
}

/// A schedule of transient outages for one provider.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutageSchedule {
    windows: Vec<OutageWindow>,
}

impl OutageSchedule {
    /// A schedule with no outages.
    pub fn always_up() -> Self {
        OutageSchedule::default()
    }

    /// Creates a schedule from a list of `(start_hour, end_hour)` pairs.
    pub fn from_hours(windows: &[(u64, u64)]) -> Self {
        let mut schedule = OutageSchedule::default();
        for &(start, end) in windows {
            schedule.add_window(SimTime::from_hours(start), SimTime::from_hours(end));
        }
        schedule
    }

    /// Adds an outage window. Windows where `end <= start` are ignored.
    pub fn add_window(&mut self, start: SimTime, end: SimTime) {
        if end > start {
            self.windows.push(OutageWindow { start, end });
        }
    }

    /// Returns `true` if the provider is reachable at `time`.
    pub fn is_up(&self, time: SimTime) -> bool {
        !self.windows.iter().any(|w| time >= w.start && time < w.end)
    }

    /// Returns `true` if the provider is down at `time`.
    pub fn is_down(&self, time: SimTime) -> bool {
        !self.is_up(time)
    }

    /// The scheduled outage windows.
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// The next transition time (outage start or end) strictly after `time`,
    /// if any. The simulator uses it to know when availability state changes.
    pub fn next_transition(&self, time: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .flat_map(|w| [w.start, w.end])
            .filter(|&t| t > time)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_up_schedule() {
        let s = OutageSchedule::always_up();
        assert!(s.is_up(SimTime::ZERO));
        assert!(s.is_up(SimTime::from_hours(10_000)));
        assert!(s.next_transition(SimTime::ZERO).is_none());
    }

    #[test]
    fn paper_repair_scenario_window() {
        // S3(l) down from hour 60 to hour 120.
        let s = OutageSchedule::from_hours(&[(60, 120)]);
        assert!(s.is_up(SimTime::from_hours(59)));
        assert!(s.is_down(SimTime::from_hours(60)));
        assert!(s.is_down(SimTime::from_hours(119)));
        assert!(s.is_up(SimTime::from_hours(120)));
        assert!(s.is_up(SimTime::from_hours(180)));
    }

    #[test]
    fn multiple_windows_and_transitions() {
        let s = OutageSchedule::from_hours(&[(10, 20), (30, 40)]);
        assert!(s.is_down(SimTime::from_hours(15)));
        assert!(s.is_up(SimTime::from_hours(25)));
        assert!(s.is_down(SimTime::from_hours(35)));
        assert_eq!(
            s.next_transition(SimTime::ZERO),
            Some(SimTime::from_hours(10))
        );
        assert_eq!(
            s.next_transition(SimTime::from_hours(10)),
            Some(SimTime::from_hours(20))
        );
        assert_eq!(
            s.next_transition(SimTime::from_hours(25)),
            Some(SimTime::from_hours(30))
        );
        assert_eq!(s.next_transition(SimTime::from_hours(40)), None);
    }

    #[test]
    fn degenerate_windows_are_ignored() {
        let mut s = OutageSchedule::always_up();
        s.add_window(SimTime::from_hours(10), SimTime::from_hours(10));
        s.add_window(SimTime::from_hours(20), SimTime::from_hours(15));
        assert_eq!(s.windows().len(), 0);
        assert!(s.is_up(SimTime::from_hours(10)));
        assert!(s.next_transition(SimTime::ZERO).is_none());
    }

    #[test]
    fn boundary_semantics_are_half_open() {
        // [start, end): down at exactly `start`, up at exactly `end`.
        let s = OutageSchedule::from_hours(&[(10, 20)]);
        assert!(s.is_up(SimTime::from_secs(10 * 3600 - 1)));
        assert!(s.is_down(SimTime::from_hours(10)), "t == start is down");
        assert!(s.is_down(SimTime::from_secs(20 * 3600 - 1)));
        assert!(s.is_up(SimTime::from_hours(20)), "t == end is up");
        // A one-second outage still obeys both boundaries.
        let tiny = OutageSchedule::from_hours(&[(5, 5)]);
        assert!(tiny.is_up(SimTime::from_hours(5)), "empty window ignored");
        let mut one_sec = OutageSchedule::always_up();
        one_sec.add_window(SimTime::from_secs(100), SimTime::from_secs(101));
        assert!(one_sec.is_up(SimTime::from_secs(99)));
        assert!(one_sec.is_down(SimTime::from_secs(100)));
        assert!(one_sec.is_up(SimTime::from_secs(101)));
    }

    #[test]
    fn overlapping_windows_union_their_downtime() {
        // (10,30) and (20,40) overlap; (40,50) is adjacent to the union.
        let s = OutageSchedule::from_hours(&[(10, 30), (20, 40), (40, 50)]);
        assert!(s.is_up(SimTime::from_hours(9)));
        for hour in 10..50 {
            assert!(s.is_down(SimTime::from_hours(hour)), "hour {hour}");
        }
        assert!(s.is_up(SimTime::from_hours(50)));
        // Transitions inside the overlapped span still enumerate every
        // window edge (callers re-evaluate `is_up`, so interior edges are
        // harmless — but none may be *missed*).
        assert_eq!(
            s.next_transition(SimTime::from_hours(9)),
            Some(SimTime::from_hours(10))
        );
        assert_eq!(
            s.next_transition(SimTime::from_hours(45)),
            Some(SimTime::from_hours(50))
        );
        assert_eq!(s.next_transition(SimTime::from_hours(50)), None);
    }

    #[test]
    fn identical_and_nested_windows() {
        // Duplicated and fully-nested windows must not distort the schedule.
        let s = OutageSchedule::from_hours(&[(10, 20), (10, 20), (12, 15)]);
        assert!(s.is_down(SimTime::from_hours(12)));
        assert!(s.is_down(SimTime::from_hours(19)));
        assert!(s.is_up(SimTime::from_hours(20)));
        // A flap: down, up for one hour, down again.
        let flap = OutageSchedule::from_hours(&[(10, 20), (21, 30)]);
        assert!(flap.is_down(SimTime::from_hours(19)));
        assert!(flap.is_up(SimTime::from_hours(20)));
        assert!(flap.is_down(SimTime::from_hours(21)));
        assert_eq!(
            flap.next_transition(SimTime::from_hours(20)),
            Some(SimTime::from_hours(21))
        );
    }
}
