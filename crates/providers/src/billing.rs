//! Billing meters.
//!
//! A [`BillingMeter`] accumulates the resources consumed at one provider and
//! converts them into money using the provider's pricing policy. The
//! simulator owns one meter per provider per accounted entity (e.g. per
//! candidate placement strategy) to produce the cumulative-cost curves of the
//! evaluation.

use crate::pricing::PricingPolicy;
use scalia_types::money::Money;
use scalia_types::size::ByteSize;
use scalia_types::usage::ResourceUsage;

/// Accumulates resource usage and prices it under a pricing policy.
#[derive(Debug, Clone)]
pub struct BillingMeter {
    pricing: PricingPolicy,
    usage: ResourceUsage,
}

impl BillingMeter {
    /// Creates a meter with no accumulated usage.
    pub fn new(pricing: PricingPolicy) -> Self {
        BillingMeter {
            pricing,
            usage: ResourceUsage::ZERO,
        }
    }

    /// Records arbitrary usage.
    pub fn record(&mut self, usage: ResourceUsage) {
        self.usage += usage;
    }

    /// Records an upload of `size` bytes plus one PUT operation.
    pub fn record_put(&mut self, size: ByteSize) {
        self.usage += ResourceUsage::upload(size) + ResourceUsage::operations(1);
    }

    /// Records a download of `size` bytes plus one GET operation.
    pub fn record_get(&mut self, size: ByteSize) {
        self.usage += ResourceUsage::download(size) + ResourceUsage::operations(1);
    }

    /// Records one DELETE operation (no bandwidth).
    pub fn record_delete(&mut self) {
        self.usage += ResourceUsage::operations(1);
    }

    /// Records `size` bytes being held for `hours` hours.
    pub fn record_storage(&mut self, size: ByteSize, hours: f64) {
        self.usage += ResourceUsage::storage(size, hours);
    }

    /// Total accumulated usage.
    pub fn usage(&self) -> ResourceUsage {
        self.usage
    }

    /// Total accumulated cost under the meter's pricing policy.
    pub fn total_cost(&self) -> Money {
        self.pricing.cost(&self.usage)
    }

    /// The pricing policy in force.
    pub fn pricing(&self) -> &PricingPolicy {
        &self.pricing
    }

    /// Resets the accumulated usage (e.g. at the start of a new experiment).
    pub fn reset(&mut self) {
        self.usage = ResourceUsage::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> BillingMeter {
        BillingMeter::new(PricingPolicy::from_dollars(0.14, 0.10, 0.15, 0.01))
    }

    #[test]
    fn put_get_delete_accounting() {
        let mut m = meter();
        m.record_put(ByteSize::from_gb(1));
        m.record_get(ByteSize::from_gb(2));
        m.record_delete();
        let u = m.usage();
        assert_eq!(u.bw_in, ByteSize::from_gb(1));
        assert_eq!(u.bw_out, ByteSize::from_gb(2));
        assert_eq!(u.ops, 3);
        // 1*0.10 + 2*0.15 + 3/1000*0.01
        let expected = 0.10 + 0.30 + 0.00003;
        assert!((m.total_cost().dollars() - expected).abs() < 1e-6);
    }

    #[test]
    fn storage_accounting() {
        let mut m = meter();
        m.record_storage(ByteSize::from_gb(10), 72.0);
        // 10 GB * 72 h = 720 GB-hours = 1 GB-month → $0.14
        assert!((m.total_cost().dollars() - 0.14).abs() < 1e-4);
    }

    #[test]
    fn reset_clears_usage() {
        let mut m = meter();
        m.record_put(ByteSize::from_mb(5));
        assert!(!m.usage().is_zero());
        m.reset();
        assert!(m.usage().is_zero());
        assert_eq!(m.total_cost(), Money::ZERO);
    }

    #[test]
    fn record_arbitrary_usage_composes() {
        let mut m = meter();
        m.record(ResourceUsage::operations(500));
        m.record(ResourceUsage::operations(500));
        assert_eq!(m.usage().ops, 1000);
        assert!((m.total_cost().dollars() - 0.01).abs() < 1e-9);
    }
}
