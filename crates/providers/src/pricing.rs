//! Provider pricing policies.
//!
//! A [`PricingPolicy`] mirrors the columns of the paper's Fig. 3: USD per GB
//! for storage (per month), bandwidth in and out, and USD per 1000 requests
//! for operations.

use scalia_types::money::Money;
use scalia_types::time::HOURS_PER_MONTH;
use scalia_types::usage::ResourceUsage;
use serde::{Deserialize, Serialize};

/// Prices charged by a storage provider.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingPolicy {
    /// USD per GB-month of storage.
    pub storage_gb_month: Money,
    /// USD per GB of inbound bandwidth.
    pub bandwidth_in_gb: Money,
    /// USD per GB of outbound bandwidth.
    pub bandwidth_out_gb: Money,
    /// USD per 1000 API operations.
    pub ops_per_1000: Money,
}

impl PricingPolicy {
    /// Creates a pricing policy from dollar amounts (as printed in Fig. 3).
    pub fn from_dollars(storage: f64, bw_in: f64, bw_out: f64, ops_1k: f64) -> Self {
        PricingPolicy {
            storage_gb_month: Money::from_dollars(storage),
            bandwidth_in_gb: Money::from_dollars(bw_in),
            bandwidth_out_gb: Money::from_dollars(bw_out),
            ops_per_1000: Money::from_dollars(ops_1k),
        }
    }

    /// A zero-price policy (useful for tests and for modelling already-paid
    /// private resources).
    pub fn free() -> Self {
        PricingPolicy {
            storage_gb_month: Money::ZERO,
            bandwidth_in_gb: Money::ZERO,
            bandwidth_out_gb: Money::ZERO,
            ops_per_1000: Money::ZERO,
        }
    }

    /// USD per GB-hour of storage (derived from the monthly price using a
    /// 30-day month, the accounting convention used throughout).
    pub fn storage_gb_hour(&self) -> Money {
        self.storage_gb_month.scale(1.0 / HOURS_PER_MONTH as f64)
    }

    /// The cost of a resource-usage vector under this policy.
    pub fn cost(&self, usage: &ResourceUsage) -> Money {
        // Scale the monthly price directly by fractional months to avoid the
        // precision loss of first rounding a per-hour price to micro-dollars.
        let storage = self
            .storage_gb_month
            .scale(usage.storage_gb_hours / HOURS_PER_MONTH as f64);
        let bw_in = self.bandwidth_in_gb.scale(usage.bw_in.as_gb());
        let bw_out = self.bandwidth_out_gb.scale(usage.bw_out.as_gb());
        let ops = self.ops_per_1000.scale(usage.ops as f64 / 1000.0);
        storage + bw_in + bw_out + ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalia_types::size::ByteSize;

    #[test]
    fn storage_cost_prorates_by_hour() {
        // $0.14 per GB-month → storing 1 GB for 720 h costs $0.14.
        let p = PricingPolicy::from_dollars(0.14, 0.1, 0.15, 0.01);
        let usage = ResourceUsage::storage(ByteSize::from_gb(1), 720.0);
        let cost = p.cost(&usage);
        assert!((cost.dollars() - 0.14).abs() < 1e-4);
    }

    #[test]
    fn bandwidth_and_ops_costs() {
        let p = PricingPolicy::from_dollars(0.0, 0.10, 0.15, 0.01);
        let usage = ResourceUsage {
            storage_gb_hours: 0.0,
            bw_in: ByteSize::from_gb(2),
            bw_out: ByteSize::from_gb(3),
            ops: 5000,
        };
        let cost = p.cost(&usage);
        // 2*0.10 + 3*0.15 + 5*0.01 = 0.20 + 0.45 + 0.05 = 0.70
        assert!((cost.dollars() - 0.70).abs() < 1e-6);
    }

    #[test]
    fn zero_usage_costs_nothing() {
        let p = PricingPolicy::from_dollars(0.14, 0.1, 0.15, 0.01);
        assert_eq!(p.cost(&ResourceUsage::ZERO), Money::ZERO);
        assert_eq!(
            PricingPolicy::free().cost(&ResourceUsage::operations(1000)),
            Money::ZERO
        );
    }

    #[test]
    fn rackspace_free_operations() {
        // Rackspace CloudFiles charges $0 per operation in Fig. 3.
        let rs = PricingPolicy::from_dollars(0.15, 0.08, 0.18, 0.0);
        let usage = ResourceUsage::operations(1_000_000);
        assert_eq!(rs.cost(&usage), Money::ZERO);
    }

    #[test]
    fn fractional_gb_billing() {
        let p = PricingPolicy::from_dollars(0.0, 0.0, 0.15, 0.0);
        // 1 MB out = 0.001 GB → $0.00015
        let usage = ResourceUsage::download(ByteSize::from_mb(1));
        assert_eq!(p.cost(&usage), Money::from_dollars(0.00015));
    }
}
