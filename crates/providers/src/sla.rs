//! Provider service-level agreements.

use scalia_types::reliability::Reliability;
use serde::{Deserialize, Serialize};

/// The durability / availability guarantees a provider advertises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderSla {
    /// Annual durability of a stored object (probability it is not lost).
    pub durability: Reliability,
    /// Availability of the service (probability a request succeeds).
    pub availability: Reliability,
}

impl ProviderSla {
    /// Creates an SLA from percentage values as printed in Fig. 3.
    pub fn from_percent(durability: f64, availability: f64) -> Self {
        ProviderSla {
            durability: Reliability::from_percent(durability),
            availability: Reliability::from_percent(availability),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_from_percentages() {
        let sla = ProviderSla::from_percent(99.999999999, 99.9);
        assert!((sla.durability.probability() - 0.99999999999).abs() < 1e-15);
        assert!((sla.availability.probability() - 0.999).abs() < 1e-12);
    }

    #[test]
    fn sla_comparison_via_reliability() {
        let high = ProviderSla::from_percent(99.999999999, 99.9);
        let low = ProviderSla::from_percent(99.99, 99.9);
        assert!(high.durability > low.durability);
        assert!(high.durability.meets(low.durability));
        assert!(!low.durability.meets(high.durability));
    }
}
