//! A single NoSQL database node.
//!
//! One node lives in each datacenter. It stores wide rows with versioned
//! cells, supports prefix scans (for statistics map-reduce jobs) and tracks
//! the last-modified timestamp per row so the periodic optimiser can ask
//! "which objects were accessed or modified since the last optimisation
//! procedure?" (§III-A3).

use crate::model::{insert_version, latest, Cell, Row, Timestamp};
use parking_lot::RwLock;
use scalia_types::ids::DatacenterId;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One database node (one per datacenter).
pub struct NoSqlNode {
    datacenter: DatacenterId,
    rows: RwLock<BTreeMap<String, Row>>,
    modified: RwLock<BTreeMap<String, Timestamp>>,
    up: RwLock<bool>,
}

impl NoSqlNode {
    /// Creates an empty node for the given datacenter.
    pub fn new(datacenter: DatacenterId) -> Self {
        NoSqlNode {
            datacenter,
            rows: RwLock::new(BTreeMap::new()),
            modified: RwLock::new(BTreeMap::new()),
            up: RwLock::new(true),
        }
    }

    /// Creates a node wrapped in an [`Arc`].
    pub fn shared(datacenter: DatacenterId) -> Arc<Self> {
        Arc::new(Self::new(datacenter))
    }

    /// The datacenter this node belongs to.
    pub fn datacenter(&self) -> DatacenterId {
        self.datacenter
    }

    /// Returns `true` if the node is reachable.
    pub fn is_up(&self) -> bool {
        *self.up.read()
    }

    /// Takes the node down / brings it back (datacenter failure simulation).
    pub fn set_up(&self, up: bool) {
        *self.up.write() = up;
    }

    /// Writes a versioned cell. Returns `false` (and stores nothing) if the
    /// node is down.
    pub fn put(&self, row_key: &str, column: &str, value: Value, timestamp: Timestamp) -> bool {
        if !self.is_up() {
            return false;
        }
        let mut rows = self.rows.write();
        let row = rows.entry(row_key.to_string()).or_default();
        let col = row.entry(column.to_string()).or_default();
        insert_version(col, Cell::new(value, timestamp));
        drop(rows);
        let mut modified = self.modified.write();
        let entry = modified.entry(row_key.to_string()).or_insert(timestamp);
        if timestamp > *entry {
            *entry = timestamp;
        }
        true
    }

    /// Latest version of a column, if present (and the node is up).
    pub fn get_latest(&self, row_key: &str, column: &str) -> Option<Cell> {
        if !self.is_up() {
            return None;
        }
        self.rows
            .read()
            .get(row_key)
            .and_then(|row| row.get(column))
            .and_then(|col| latest(col).cloned())
    }

    /// Applies `read` to the latest cell of a column **without cloning it**
    /// — the zero-copy variant of [`Self::get_latest`] for hot point reads
    /// (the optimiser decodes one digest per accessed object per cycle).
    pub fn with_latest<T>(
        &self,
        row_key: &str,
        column: &str,
        read: impl FnOnce(&Cell) -> T,
    ) -> Option<T> {
        if !self.is_up() {
            return None;
        }
        self.rows
            .read()
            .get(row_key)
            .and_then(|row| row.get(column))
            .and_then(latest)
            .map(read)
    }

    /// All versions of a column, oldest first.
    pub fn get_versions(&self, row_key: &str, column: &str) -> Vec<Cell> {
        if !self.is_up() {
            return Vec::new();
        }
        self.rows
            .read()
            .get(row_key)
            .and_then(|row| row.get(column))
            .cloned()
            .unwrap_or_default()
    }

    /// The full row (all columns, all versions), if present.
    pub fn get_row(&self, row_key: &str) -> Option<Row> {
        if !self.is_up() {
            return None;
        }
        self.rows.read().get(row_key).cloned()
    }

    /// The latest cell of every column of `row_key` whose name starts with
    /// `prefix`, in column order. Wide rows mixing several column families
    /// (class rows: lifetime samples, usage samples, per-period rollups)
    /// can be read one family at a time without cloning the whole row.
    pub fn latest_cells_with_prefix(&self, row_key: &str, prefix: &str) -> Vec<(String, Cell)> {
        if !self.is_up() {
            return Vec::new();
        }
        let rows = self.rows.read();
        let Some(row) = rows.get(row_key) else {
            return Vec::new();
        };
        row.range(prefix.to_string()..)
            .take_while(|(column, _)| column.starts_with(prefix))
            .filter_map(|(column, cells)| latest(cells).map(|c| (column.clone(), c.clone())))
            .collect()
    }

    /// Removes every version of a column older than the latest one,
    /// returning the removed cells (the engine deletes their chunks).
    pub fn prune_old_versions(&self, row_key: &str, column: &str) -> Vec<Cell> {
        if !self.is_up() {
            return Vec::new();
        }
        let mut rows = self.rows.write();
        let Some(row) = rows.get_mut(row_key) else {
            return Vec::new();
        };
        let Some(col) = row.get_mut(column) else {
            return Vec::new();
        };
        if col.len() <= 1 {
            return Vec::new();
        }
        let keep = col.pop().expect("non-empty column");

        std::mem::replace(col, vec![keep])
    }

    /// Deletes a whole row. Returns `true` if it existed.
    pub fn delete_row(&self, row_key: &str) -> bool {
        if !self.is_up() {
            return false;
        }
        self.modified.write().remove(row_key);
        self.rows.write().remove(row_key).is_some()
    }

    /// Deletes a single column of a row.
    pub fn delete_column(&self, row_key: &str, column: &str) -> bool {
        if !self.is_up() {
            return false;
        }
        let mut rows = self.rows.write();
        rows.get_mut(row_key)
            .map(|row| row.remove(column).is_some())
            .unwrap_or(false)
    }

    /// Row keys starting with `prefix`, in lexicographic order.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<String> {
        if !self.is_up() {
            return Vec::new();
        }
        self.rows
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Visits the latest cell of every column of every row with
    /// `start <= key < end`, in lexicographic order, **without cloning**
    /// rows or cells — a true range query over the ordered row map for hot
    /// range scans (the optimiser's dirty-set fetch visits one cell per
    /// touched object per cycle; cloning whole rows there would cost more
    /// than the rest of the fetch combined).
    pub fn visit_range_latest(
        &self,
        start: &str,
        end: &str,
        mut visit: impl FnMut(&str, &str, &Cell),
    ) {
        if !self.is_up() {
            return;
        }
        for (row_key, row) in self.rows.read().range(start.to_string()..end.to_string()) {
            for (column, cells) in row {
                if let Some(cell) = latest(cells) {
                    visit(row_key, column, cell);
                }
            }
        }
    }

    /// Row keys with `start <= key < end`, in lexicographic order (the
    /// keys-only variant of [`Self::range_rows`]).
    pub fn range_keys(&self, start: &str, end: &str) -> Vec<String> {
        if !self.is_up() {
            return Vec::new();
        }
        self.rows
            .read()
            .range(start.to_string()..end.to_string())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// All rows, cloned. Used by map-reduce jobs.
    pub fn snapshot(&self) -> Vec<(String, Row)> {
        if !self.is_up() {
            return Vec::new();
        }
        self.rows
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Row keys whose last modification is at or after `since` — the set `A`
    /// of accessed/modified objects the periodic optimiser shards across
    /// engines.
    pub fn modified_since(&self, since: Timestamp) -> Vec<String> {
        if !self.is_up() {
            return Vec::new();
        }
        self.modified
            .read()
            .iter()
            .filter(|(_, &ts)| ts >= since)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }

    /// Replaces the node's entire contents with a checkpoint snapshot,
    /// rebuilding the modified-row index from the snapshot's cell
    /// timestamps. Crash recovery restores the checkpoint first and then
    /// replays the write-ahead journal on top (see
    /// `ReplicatedStore::recover`); unlike normal mutations this works even
    /// while the node is marked down, because recovery is what brings it
    /// back.
    pub fn restore(&self, rows: Vec<(String, Row)>) {
        let mut modified = BTreeMap::new();
        for (row_key, row) in &rows {
            let max_ts = row
                .values()
                .flat_map(|cells| cells.iter().map(|c| c.timestamp))
                .max();
            if let Some(ts) = max_ts {
                modified.insert(row_key.clone(), ts);
            }
        }
        *self.rows.write() = rows.into_iter().collect();
        *self.modified.write() = modified;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn node() -> NoSqlNode {
        NoSqlNode::new(DatacenterId::new(0))
    }

    #[test]
    fn put_get_roundtrip() {
        let n = node();
        assert!(n.put(
            "row1",
            "file_meta",
            json!({"size": 42}),
            Timestamp::new(1, 0)
        ));
        let cell = n.get_latest("row1", "file_meta").unwrap();
        assert_eq!(cell.value["size"], 42);
        assert!(n.get_latest("row1", "missing").is_none());
        assert!(n.get_latest("missing", "file_meta").is_none());
        assert_eq!(n.row_count(), 1);
    }

    #[test]
    fn versions_accumulate_and_latest_wins() {
        let n = node();
        n.put("r", "c", json!("v1"), Timestamp::new(1, 0));
        n.put("r", "c", json!("v2"), Timestamp::new(2, 0));
        n.put("r", "c", json!("v0"), Timestamp::new(0, 5));
        assert_eq!(n.get_versions("r", "c").len(), 3);
        assert_eq!(n.get_latest("r", "c").unwrap().value, json!("v2"));
    }

    #[test]
    fn prune_old_versions_returns_removed() {
        let n = node();
        n.put("r", "c", json!("old"), Timestamp::new(1, 0));
        n.put("r", "c", json!("mid"), Timestamp::new(2, 0));
        n.put("r", "c", json!("new"), Timestamp::new(3, 0));
        let removed = n.prune_old_versions("r", "c");
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].value, json!("old"));
        assert_eq!(n.get_versions("r", "c").len(), 1);
        assert_eq!(n.get_latest("r", "c").unwrap().value, json!("new"));
        // Pruning again is a no-op.
        assert!(n.prune_old_versions("r", "c").is_empty());
        assert!(n.prune_old_versions("missing", "c").is_empty());
    }

    #[test]
    fn delete_row_and_column() {
        let n = node();
        n.put("r", "a", json!(1), Timestamp::new(1, 0));
        n.put("r", "b", json!(2), Timestamp::new(1, 1));
        assert!(n.delete_column("r", "a"));
        assert!(!n.delete_column("r", "a"));
        assert!(n.get_latest("r", "b").is_some());
        assert!(n.delete_row("r"));
        assert!(!n.delete_row("r"));
        assert_eq!(n.row_count(), 0);
    }

    #[test]
    fn scan_prefix_and_snapshot() {
        let n = node();
        n.put("stats:class1", "ops", json!(5), Timestamp::new(1, 0));
        n.put("stats:class2", "ops", json!(9), Timestamp::new(1, 1));
        n.put("meta:obj1", "file_meta", json!({}), Timestamp::new(1, 2));
        assert_eq!(n.scan_prefix("stats:").len(), 2);
        assert_eq!(n.scan_prefix("meta:").len(), 1);
        assert_eq!(n.scan_prefix("zzz").len(), 0);
        assert_eq!(n.snapshot().len(), 3);
    }

    #[test]
    fn modified_since_tracks_latest_write() {
        let n = node();
        n.put("a", "c", json!(1), Timestamp::new(10, 0));
        n.put("b", "c", json!(1), Timestamp::new(20, 0));
        n.put("a", "c", json!(2), Timestamp::new(30, 0));
        let recent = n.modified_since(Timestamp::new(15, 0));
        assert!(recent.contains(&"a".to_string()));
        assert!(recent.contains(&"b".to_string()));
        let very_recent = n.modified_since(Timestamp::new(25, 0));
        assert_eq!(very_recent, vec!["a".to_string()]);
        assert!(n.modified_since(Timestamp::new(31, 0)).is_empty());
    }

    #[test]
    fn restore_replaces_contents_and_rebuilds_modified_index() {
        let n = node();
        n.put("old", "c", json!(1), Timestamp::new(5, 0));
        let other = node();
        other.put("a", "c", json!(10), Timestamp::new(10, 0));
        other.put("a", "d", json!(11), Timestamp::new(12, 0));
        other.put("b", "c", json!(20), Timestamp::new(20, 0));
        n.restore(other.snapshot());
        assert!(n.get_latest("old", "c").is_none(), "old contents replaced");
        assert_eq!(n.get_latest("a", "d").unwrap().value, json!(11));
        assert_eq!(n.row_count(), 2);
        // The modified index reflects the snapshot's max timestamps.
        assert_eq!(n.modified_since(Timestamp::new(13, 0)), vec!["b"]);
        let both = n.modified_since(Timestamp::new(12, 0));
        assert_eq!(both, vec!["a".to_string(), "b".to_string()]);
        // Restore works on a down node (recovery brings it back by hand).
        n.set_up(false);
        n.restore(Vec::new());
        n.set_up(true);
        assert_eq!(n.row_count(), 0);
    }

    #[test]
    fn down_node_rejects_everything() {
        let n = node();
        n.put("r", "c", json!(1), Timestamp::new(1, 0));
        n.set_up(false);
        assert!(!n.is_up());
        assert!(!n.put("r", "c", json!(2), Timestamp::new(2, 0)));
        assert!(n.get_latest("r", "c").is_none());
        assert!(n.scan_prefix("").is_empty());
        assert!(n.modified_since(Timestamp::ZERO).is_empty());
        n.set_up(true);
        assert_eq!(n.get_latest("r", "c").unwrap().value, json!(1));
    }
}
