//! Multi-version concurrency control.
//!
//! Scalia does not lock: concurrent updates of the same entry produce
//! multiple versions (Fig. 10). When a conflict is detected, the freshest
//! version (by timestamp) is kept, and the deprecated versions must be
//! removed both from the database and from the storage providers (their
//! chunks are garbage). This module implements that resolution policy.

use crate::model::{Cell, Column};

/// The outcome of resolving the versions of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolution {
    /// The surviving (freshest) version, if the column had any version.
    pub winner: Option<Cell>,
    /// The deprecated versions that must be cleaned up.
    pub deprecated: Vec<Cell>,
    /// Whether a conflict (more than one version) was detected.
    pub had_conflict: bool,
}

/// Resolves a column's versions: the freshest timestamp wins, everything
/// else is deprecated.
pub fn resolve_latest(column: &Column) -> Resolution {
    if column.is_empty() {
        return Resolution {
            winner: None,
            deprecated: Vec::new(),
            had_conflict: false,
        };
    }
    // Columns are kept sorted by ascending timestamp.
    let winner = column.last().cloned();
    let deprecated = column[..column.len() - 1].to_vec();
    Resolution {
        had_conflict: !deprecated.is_empty(),
        winner,
        deprecated,
    }
}

/// Returns `true` if the column currently holds conflicting versions.
pub fn has_conflict(column: &Column) -> bool {
    column.len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{insert_version, Timestamp};
    use serde_json::json;

    #[test]
    fn empty_column_has_no_conflict() {
        let col = Column::new();
        let r = resolve_latest(&col);
        assert!(r.winner.is_none());
        assert!(r.deprecated.is_empty());
        assert!(!r.had_conflict);
        assert!(!has_conflict(&col));
    }

    #[test]
    fn single_version_is_not_a_conflict() {
        let mut col = Column::new();
        insert_version(&mut col, Cell::new(json!("only"), Timestamp::new(5, 0)));
        let r = resolve_latest(&col);
        assert_eq!(r.winner.unwrap().value, json!("only"));
        assert!(!r.had_conflict);
        assert!(!has_conflict(&col));
    }

    #[test]
    fn concurrent_writes_resolve_to_freshest() {
        let mut col = Column::new();
        // Two engines in different datacenters write concurrently; the one
        // with the later (NTP-synchronised) timestamp wins.
        insert_version(
            &mut col,
            Cell::new(json!({"v": "dc1"}), Timestamp::new(100, 1)),
        );
        insert_version(
            &mut col,
            Cell::new(json!({"v": "dc2"}), Timestamp::new(100, 2)),
        );
        insert_version(
            &mut col,
            Cell::new(json!({"v": "stale"}), Timestamp::new(90, 0)),
        );
        assert!(has_conflict(&col));
        let r = resolve_latest(&col);
        assert!(r.had_conflict);
        assert_eq!(r.winner.unwrap().value["v"], "dc2");
        assert_eq!(r.deprecated.len(), 2);
        let deprecated: Vec<&str> = r
            .deprecated
            .iter()
            .map(|c| c.value["v"].as_str().unwrap())
            .collect();
        assert_eq!(deprecated, vec!["stale", "dc1"]);
    }
}
