//! Write-ahead journal for crash-consistent metadata commits.
//!
//! The replicated store logs every mutation *before* applying it to the
//! database nodes, so that a crash at any point leaves enough durable intent
//! to finish (or cleanly discard) the interrupted operation on restart.
//!
//! # Journal format
//!
//! The journal is an append-only sequence of [`JournalRecord`]s:
//!
//! * `Apply(op)` — a single auto-committed mutation (a statistics write, a
//!   row deletion). Logged immediately before the mutation is applied;
//!   replay re-applies it.
//! * `Begin { txid, ops }` — a multi-operation transaction (the engine's
//!   `commit_metadata`: metadata put + optimizer digest + container index +
//!   version prunes). The *whole* op list is logged atomically before any
//!   node sees any of it.
//! * `Commit { txid }` — appended after every op of transaction `txid` was
//!   applied to the nodes.
//!
//! Recovery ([`crate::replication::ReplicatedStore::recover`]) restores the
//! nodes from the last checkpoint and replays the journal in order. A
//! `Begin` without a matching `Commit` marks a transaction interrupted
//! mid-apply: its intent is durable, so recovery **redoes** it (the paper's
//! "either the old or the new placement" — a crash before the `Begin` record
//! lands yields the old placement, any crash after it yields the new one).
//! Replay is idempotent because node cells deduplicate on exact timestamps
//! (see [`crate::model::insert_version`]) and prunes/deletes are naturally
//! idempotent.
//!
//! The journal lives in memory here (the whole metastore is an in-memory
//! reproduction); [`crate::replication::ReplicatedStore::checkpoint`] plays
//! the role of flushing a snapshot to stable storage and truncating the
//! committed prefix.

use crate::model::{Row, Timestamp};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// One journaled mutation of the replicated store.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Write a versioned cell.
    Put {
        /// Row key of the mutation.
        row_key: String,
        /// Column written.
        column: String,
        /// Cell value.
        value: Value,
        /// Version timestamp of the cell.
        timestamp: Timestamp,
    },
    /// Delete a whole row.
    DeleteRow {
        /// Row key to delete.
        row_key: String,
    },
    /// Delete one column of a row.
    DeleteColumn {
        /// Row key of the column.
        row_key: String,
        /// Column to delete.
        column: String,
    },
    /// Drop every version of a column older than its latest.
    Prune {
        /// Row key of the column.
        row_key: String,
        /// Column to prune.
        column: String,
    },
}

/// One record of the append-only journal (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A single auto-committed mutation.
    Apply(JournalOp),
    /// Start of a multi-operation transaction: the full op list, logged
    /// before any node applies any of it.
    Begin {
        /// Transaction id (unique within this journal).
        txid: u64,
        /// The transaction's operations, in apply order.
        ops: Vec<JournalOp>,
    },
    /// End of a transaction: every op of `txid` reached the nodes.
    Commit {
        /// Transaction id being committed.
        txid: u64,
    },
}

/// The append-only write-ahead journal of a replicated store.
#[derive(Debug, Default)]
pub struct WriteAheadJournal {
    records: Mutex<Vec<JournalRecord>>,
    next_txid: AtomicU64,
}

impl WriteAheadJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        WriteAheadJournal::default()
    }

    /// Logs a single auto-committed mutation.
    pub fn log_apply(&self, op: JournalOp) {
        self.records.lock().push(JournalRecord::Apply(op));
    }

    /// Logs the start of a transaction, returning its id.
    pub fn begin(&self, ops: Vec<JournalOp>) -> u64 {
        let txid = self.next_txid.fetch_add(1, Ordering::Relaxed);
        self.records.lock().push(JournalRecord::Begin { txid, ops });
        txid
    }

    /// Logs the commit of transaction `txid`.
    pub fn commit(&self, txid: u64) {
        self.records.lock().push(JournalRecord::Commit { txid });
    }

    /// Number of records currently in the journal.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Returns `true` if the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// A copy of every record, in append order.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.records.lock().clone()
    }

    /// Transaction ids that have a `Begin` but no `Commit` record.
    pub fn uncommitted(&self) -> Vec<u64> {
        let records = self.records.lock();
        let committed: BTreeSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Commit { txid } => Some(*txid),
                _ => None,
            })
            .collect();
        records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Begin { txid, .. } if !committed.contains(txid) => Some(*txid),
                _ => None,
            })
            .collect()
    }

    /// Drops every record made durable by a checkpoint — applied singles,
    /// committed transactions and their commits — keeping only `Begin`
    /// records still awaiting a commit. Returns the number of records
    /// dropped.
    pub fn truncate_committed(&self) -> usize {
        let mut records = self.records.lock();
        let committed: BTreeSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Commit { txid } => Some(*txid),
                _ => None,
            })
            .collect();
        let before = records.len();
        records.retain(|r| match r {
            JournalRecord::Begin { txid, .. } => !committed.contains(txid),
            _ => false,
        });
        before - records.len()
    }
}

/// A point-in-time snapshot of every node's rows, paired with the journal
/// truncation that made it the recovery baseline. Produced by
/// [`crate::replication::ReplicatedStore::checkpoint`] and consumed by
/// [`crate::replication::ReplicatedStore::recover`].
#[derive(Debug, Clone, Default)]
pub struct StoreCheckpoint {
    /// Per-node row snapshots, parallel to the store's node list.
    pub node_rows: Vec<Vec<(String, Row)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn put(row: &str, ts: u64) -> JournalOp {
        JournalOp::Put {
            row_key: row.to_string(),
            column: "c".to_string(),
            value: json!(ts),
            timestamp: Timestamp::new(ts, 0),
        }
    }

    #[test]
    fn transactions_track_commit_state() {
        let j = WriteAheadJournal::new();
        let t1 = j.begin(vec![put("a", 1)]);
        let t2 = j.begin(vec![put("b", 2)]);
        assert_ne!(t1, t2);
        j.commit(t1);
        assert_eq!(j.uncommitted(), vec![t2]);
        j.commit(t2);
        assert!(j.uncommitted().is_empty());
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn truncate_keeps_only_uncommitted_begins() {
        let j = WriteAheadJournal::new();
        j.log_apply(put("a", 1));
        let t1 = j.begin(vec![put("b", 2)]);
        j.commit(t1);
        let t2 = j.begin(vec![put("c", 3)]);
        let dropped = j.truncate_committed();
        assert_eq!(dropped, 3, "apply + committed begin + commit are dropped");
        assert_eq!(j.len(), 1);
        assert_eq!(j.uncommitted(), vec![t2]);
        assert!(matches!(
            j.records()[0],
            JournalRecord::Begin { txid, .. } if txid == t2
        ));
    }

    #[test]
    fn empty_journal_is_empty() {
        let j = WriteAheadJournal::new();
        assert!(j.is_empty());
        assert_eq!(j.truncate_committed(), 0);
        assert!(j.uncommitted().is_empty());
    }
}
