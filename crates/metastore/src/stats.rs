//! The statistics tables.
//!
//! Two families of rows are kept (paper Fig. 6):
//!
//! * **per-object** access statistics — one column per sampling period with
//!   the storage / bandwidth / operation counters of that period, plus the
//!   object's class and creation time;
//! * **per-class** statistics — resource-usage samples and lifetime samples
//!   of all objects of a class, used to pick a good *first* placement for
//!   new objects and to estimate time-left-to-live.
//!
//! Statistics rows are always written with globally unique `(row, column,
//! timestamp)` coordinates, so — as the paper notes — they never conflict.

use crate::model::Timestamp;
use crate::replication::ReplicatedStore;
use scalia_types::error::Result;
use scalia_types::ids::DatacenterId;
use scalia_types::size::ByteSize;
use scalia_types::stats::{AccessHistory, PeriodStats};
use scalia_types::usage::ResourceUsage;
use serde_json::json;
use std::sync::Arc;

/// Prefix of per-object statistics rows.
const OBJ_PREFIX: &str = "stats:obj:";
/// Prefix of per-class statistics rows.
const CLASS_PREFIX: &str = "stats:class:";

/// The statistics store shared by engines and the periodic optimiser.
pub struct StatisticsStore {
    db: Arc<ReplicatedStore>,
    local: DatacenterId,
}

impl StatisticsStore {
    /// Creates a statistics store on top of a replicated database, reading
    /// from the given local datacenter by preference.
    pub fn new(db: Arc<ReplicatedStore>, local: DatacenterId) -> Self {
        StatisticsStore { db, local }
    }

    fn obj_row(object_row_key: &str) -> String {
        format!("{OBJ_PREFIX}{object_row_key}")
    }

    fn class_row(class_id: &str) -> String {
        format!("{CLASS_PREFIX}{class_id}")
    }

    /// Records the statistics of one completed sampling period for an object.
    pub fn record_period(
        &self,
        object_row_key: &str,
        stats: &PeriodStats,
        timestamp: Timestamp,
    ) -> Result<()> {
        let row = Self::obj_row(object_row_key);
        let column = format!("period:{:012}", stats.period);
        let value = json!({
            "period": stats.period,
            "storage": stats.storage.bytes(),
            "bw_in": stats.bw_in.bytes(),
            "bw_out": stats.bw_out.bytes(),
            "reads": stats.reads,
            "writes": stats.writes,
        });
        self.db.put(&row, &column, value, timestamp)
    }

    /// Records the class an object belongs to (written once at insertion).
    pub fn record_object_class(
        &self,
        object_row_key: &str,
        class_id: &str,
        timestamp: Timestamp,
    ) -> Result<()> {
        self.db.put(
            &Self::obj_row(object_row_key),
            "class",
            json!(class_id),
            timestamp,
        )
    }

    /// The class recorded for an object, if any.
    pub fn object_class(&self, object_row_key: &str) -> Option<String> {
        self.db
            .get_latest(self.local, &Self::obj_row(object_row_key), "class")
            .and_then(|c| c.value.as_str().map(str::to_string))
    }

    /// Reconstructs the access history of an object from its statistics row,
    /// keeping at most `max_periods` most recent periods.
    pub fn history(&self, object_row_key: &str, max_periods: usize) -> AccessHistory {
        let row = Self::obj_row(object_row_key);
        let mut history = AccessHistory::new(max_periods.max(1));
        // Period columns sort lexicographically because the period index is
        // zero-padded.
        let node = self
            .db
            .nodes()
            .iter()
            .find(|n| n.is_up() && n.datacenter() == self.local)
            .or_else(|| self.db.nodes().iter().find(|n| n.is_up()));
        let Some(node) = node else {
            return history;
        };
        let Some(row_data) = node.get_row(&row) else {
            return history;
        };
        let mut periods: Vec<PeriodStats> = row_data
            .iter()
            .filter(|(col, _)| col.starts_with("period:"))
            .filter_map(|(_, cells)| cells.last())
            .map(|cell| PeriodStats {
                period: cell.value["period"].as_u64().unwrap_or(0),
                storage: ByteSize::from_bytes(cell.value["storage"].as_u64().unwrap_or(0)),
                bw_in: ByteSize::from_bytes(cell.value["bw_in"].as_u64().unwrap_or(0)),
                bw_out: ByteSize::from_bytes(cell.value["bw_out"].as_u64().unwrap_or(0)),
                reads: cell.value["reads"].as_u64().unwrap_or(0),
                writes: cell.value["writes"].as_u64().unwrap_or(0),
            })
            .collect();
        periods.sort_by_key(|p| p.period);
        // Fill the gaps: a sampling period with no recorded accesses is a
        // real observation of zero activity, which the trend detector must
        // see (otherwise a burst followed by silence looks like a plateau).
        let mut previous: Option<&PeriodStats> = None;
        let mut filled: Vec<PeriodStats> = Vec::with_capacity(periods.len());
        for p in &periods {
            if let Some(prev) = previous {
                let mut missing = prev.period + 1;
                while missing < p.period {
                    filled.push(PeriodStats {
                        period: missing,
                        storage: prev.storage,
                        ..PeriodStats::empty(missing)
                    });
                    missing += 1;
                }
            }
            filled.push(*p);
            previous = Some(p);
        }
        for p in filled {
            history.push(p);
        }
        history
    }

    /// Object row keys whose statistics were modified at or after `since` —
    /// the set `A` the periodic optimiser shards across engines.
    pub fn objects_accessed_since(&self, since: Timestamp) -> Vec<String> {
        self.db
            .modified_since(since)
            .into_iter()
            .filter_map(|k| k.strip_prefix(OBJ_PREFIX).map(str::to_string))
            .collect()
    }

    /// Records a per-period resource-usage sample for a class of objects.
    pub fn record_class_usage(
        &self,
        class_id: &str,
        usage: &ResourceUsage,
        timestamp: Timestamp,
    ) -> Result<()> {
        let value = json!({
            "storage_gb_hours": usage.storage_gb_hours,
            "bw_in": usage.bw_in.bytes(),
            "bw_out": usage.bw_out.bytes(),
            "ops": usage.ops,
        });
        self.db.put(
            &Self::class_row(class_id),
            &format!("usage:{}:{}", timestamp.secs, timestamp.seq),
            value,
            timestamp,
        )
    }

    /// Mean per-period resource usage observed for a class, if any sample
    /// exists. This feeds the first placement of brand-new objects
    /// (§III-A1, Fig. 6).
    pub fn mean_class_usage(&self, class_id: &str) -> Option<ResourceUsage> {
        let row = Self::class_row(class_id);
        let node = self.db.nodes().iter().find(|n| n.is_up())?;
        let row_data = node.get_row(&row)?;
        let samples: Vec<ResourceUsage> = row_data
            .iter()
            .filter(|(col, _)| col.starts_with("usage:"))
            .filter_map(|(_, cells)| cells.last())
            .map(|cell| ResourceUsage {
                storage_gb_hours: cell.value["storage_gb_hours"].as_f64().unwrap_or(0.0),
                bw_in: ByteSize::from_bytes(cell.value["bw_in"].as_u64().unwrap_or(0)),
                bw_out: ByteSize::from_bytes(cell.value["bw_out"].as_u64().unwrap_or(0)),
                ops: cell.value["ops"].as_u64().unwrap_or(0),
            })
            .collect();
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let total: ResourceUsage = samples.into_iter().sum();
        Some(total.scale(1.0 / n))
    }

    /// Records the observed lifetime (in hours) of a deleted object of a
    /// class. These samples build the class's deletion-time distribution
    /// (paper Fig. 5, left).
    pub fn record_class_lifetime(
        &self,
        class_id: &str,
        lifetime_hours: f64,
        timestamp: Timestamp,
    ) -> Result<()> {
        self.db.put(
            &Self::class_row(class_id),
            &format!("lifetime:{}:{}", timestamp.secs, timestamp.seq),
            json!(lifetime_hours),
            timestamp,
        )
    }

    /// All recorded lifetime samples (hours) of a class.
    pub fn class_lifetimes(&self, class_id: &str) -> Vec<f64> {
        let row = Self::class_row(class_id);
        let Some(node) = self.db.nodes().iter().find(|n| n.is_up()) else {
            return Vec::new();
        };
        let Some(row_data) = node.get_row(&row) else {
            return Vec::new();
        };
        let mut lifetimes: Vec<f64> = row_data
            .iter()
            .filter(|(col, _)| col.starts_with("lifetime:"))
            .filter_map(|(_, cells)| cells.last())
            .filter_map(|cell| cell.value.as_f64())
            .collect();
        lifetimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lifetimes
    }

    /// All class ids with at least one statistics row.
    pub fn known_classes(&self) -> Vec<String> {
        let Some(node) = self.db.nodes().iter().find(|n| n.is_up()) else {
            return Vec::new();
        };
        node.scan_prefix(CLASS_PREFIX)
            .into_iter()
            .filter_map(|k| k.strip_prefix(CLASS_PREFIX).map(str::to_string))
            .collect()
    }

    /// Deletes the statistics row of an object (after the object is deleted
    /// and its lifetime has been folded into its class statistics).
    pub fn delete_object_stats(&self, object_row_key: &str) {
        self.db.delete_row(&Self::obj_row(object_row_key));
    }

    /// The underlying replicated database (used by map-reduce jobs).
    pub fn database(&self) -> &Arc<ReplicatedStore> {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> StatisticsStore {
        StatisticsStore::new(
            Arc::new(ReplicatedStore::with_datacenters(2)),
            DatacenterId::new(0),
        )
    }

    fn stats(period: u64, reads: u64, writes: u64) -> PeriodStats {
        PeriodStats {
            period,
            storage: ByteSize::from_mb(1),
            bw_in: ByteSize::from_kb(writes * 100),
            bw_out: ByteSize::from_kb(reads * 100),
            reads,
            writes,
        }
    }

    #[test]
    fn per_object_history_roundtrip() {
        let s = store();
        for period in 0..5 {
            s.record_period(
                "obj1",
                &stats(period, period * 2, 1),
                Timestamp::new(period * 3600, 0),
            )
            .unwrap();
        }
        let history = s.history("obj1", 100);
        assert_eq!(history.len(), 5);
        assert_eq!(history.records()[0].period, 0);
        assert_eq!(history.records()[4].period, 4);
        assert_eq!(history.records()[4].reads, 8);
        // Bounded history keeps only the most recent periods.
        let bounded = s.history("obj1", 2);
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.records()[0].period, 3);
        // Unknown object yields an empty history.
        assert!(s.history("unknown", 10).is_empty());
    }

    #[test]
    fn object_class_roundtrip() {
        let s = store();
        s.record_object_class("obj1", "class-abc", Timestamp::new(1, 0))
            .unwrap();
        assert_eq!(s.object_class("obj1").unwrap(), "class-abc");
        assert!(s.object_class("other").is_none());
    }

    #[test]
    fn objects_accessed_since_filters_by_timestamp() {
        let s = store();
        s.record_period("obj1", &stats(0, 1, 0), Timestamp::new(100, 0))
            .unwrap();
        s.record_period("obj2", &stats(0, 1, 0), Timestamp::new(200, 0))
            .unwrap();
        s.record_class_usage(
            "classX",
            &ResourceUsage::operations(1),
            Timestamp::new(300, 0),
        )
        .unwrap();
        let recent = s.objects_accessed_since(Timestamp::new(150, 0));
        assert_eq!(recent, vec!["obj2".to_string()]);
        let all = s.objects_accessed_since(Timestamp::ZERO);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn class_usage_mean() {
        let s = store();
        assert!(s.mean_class_usage("c").is_none());
        s.record_class_usage(
            "c",
            &ResourceUsage {
                storage_gb_hours: 1.0,
                bw_in: ByteSize::from_mb(10),
                bw_out: ByteSize::from_mb(20),
                ops: 10,
            },
            Timestamp::new(1, 0),
        )
        .unwrap();
        s.record_class_usage(
            "c",
            &ResourceUsage {
                storage_gb_hours: 3.0,
                bw_in: ByteSize::from_mb(30),
                bw_out: ByteSize::from_mb(40),
                ops: 30,
            },
            Timestamp::new(2, 0),
        )
        .unwrap();
        let mean = s.mean_class_usage("c").unwrap();
        assert!((mean.storage_gb_hours - 2.0).abs() < 1e-12);
        assert_eq!(mean.bw_in, ByteSize::from_mb(20));
        assert_eq!(mean.bw_out, ByteSize::from_mb(30));
        assert_eq!(mean.ops, 20);
    }

    #[test]
    fn class_lifetimes_accumulate_sorted() {
        let s = store();
        s.record_class_lifetime("c", 5.0, Timestamp::new(1, 0))
            .unwrap();
        s.record_class_lifetime("c", 2.0, Timestamp::new(2, 0))
            .unwrap();
        s.record_class_lifetime("c", 3.5, Timestamp::new(3, 0))
            .unwrap();
        assert_eq!(s.class_lifetimes("c"), vec![2.0, 3.5, 5.0]);
        assert!(s.class_lifetimes("unknown").is_empty());
        assert_eq!(s.known_classes(), vec!["c".to_string()]);
    }

    #[test]
    fn delete_object_stats_removes_row() {
        let s = store();
        s.record_period("obj1", &stats(0, 1, 0), Timestamp::new(1, 0))
            .unwrap();
        assert_eq!(s.history("obj1", 10).len(), 1);
        s.delete_object_stats("obj1");
        assert!(s.history("obj1", 10).is_empty());
    }

    #[test]
    fn statistics_survive_datacenter_failure() {
        let s = store();
        s.record_period("obj1", &stats(0, 3, 1), Timestamp::new(1, 0))
            .unwrap();
        // Local datacenter goes down; history is served by the replica.
        s.database().nodes()[0].set_up(false);
        let history = s.history("obj1", 10);
        assert_eq!(history.len(), 1);
        assert_eq!(history.records()[0].reads, 3);
    }
}
