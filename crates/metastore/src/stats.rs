//! The statistics tables.
//!
//! Three families of rows are kept (paper Fig. 6, extended):
//!
//! * **per-object** access statistics — one column per sampling period with
//!   the storage / bandwidth / operation counters of that period, plus the
//!   object's class and creation time;
//! * **per-class** statistics — resource-usage samples and lifetime samples
//!   of all objects of a class, used to pick a good *first* placement for
//!   new objects and to estimate time-left-to-live, plus incrementally
//!   maintained **per-period rollups** (one column per `(period, member)`
//!   contribution) that feed class-level trend detection and the
//!   one-search-per-class optimisation pipeline;
//! * the **dirty-set index** — sharded per-time-bucket rows whose columns
//!   are the row keys of objects accessed or modified in that bucket. The
//!   periodic optimiser's accessed-set fetch is a *range scan* over the
//!   buckets since its previous run, so its cost scales with the number of
//!   objects actually touched, not with the number of rows stored.
//!
//! Statistics rows are always written with globally unique `(row, column,
//! timestamp)` coordinates, so — as the paper notes — they never conflict.

use crate::model::Timestamp;
use crate::replication::ReplicatedStore;
use crate::store::NoSqlNode;
use scalia_types::error::Result;
use scalia_types::ids::DatacenterId;
use scalia_types::size::ByteSize;
use scalia_types::stats::{AccessHistory, PeriodStats};
use scalia_types::usage::ResourceUsage;
use serde_json::json;
use std::sync::Arc;

/// Prefix of per-object statistics rows.
const OBJ_PREFIX: &str = "stats:obj:";
/// Prefix of per-class statistics rows.
const CLASS_PREFIX: &str = "stats:class:";
/// Prefix of dirty-set index rows (`stats:dirty:{bucket:012}:{shard:02}`).
const DIRTY_PREFIX: &str = "stats:dirty:";
/// Exclusive upper bound of the dirty-set row-key range (`;` = `:` + 1, so
/// every `stats:dirty:…` key sorts strictly below it).
const DIRTY_END: &str = "stats:dirty;";
/// Width of one dirty-set time bucket, in simulated seconds. A pure index
/// partition (not a semantic sampling period): entries land in the bucket of
/// their write timestamp, so a fetch "since `t`" only ever needs buckets
/// `>= t / DIRTY_BUCKET_SECS`.
pub const DIRTY_BUCKET_SECS: u64 = 3600;
/// Number of shards each dirty bucket is split into, spreading concurrent
/// writers across rows.
pub const DIRTY_SHARDS: u64 = 16;
/// Cap on retained per-class lifetime and usage sample columns; garbage
/// collection drops the oldest samples beyond it, so a churning deployment's
/// class rows stay bounded.
pub const MAX_CLASS_SAMPLES: usize = 512;
/// Rollup columns older than this many sampling periods are dropped by
/// [`StatisticsStore::gc_statistics`] — matching the per-object history
/// bound ([`scalia_types::stats::DEFAULT_HISTORY_LEN`]).
pub const CLASS_ROLLUP_RETENTION: u64 = scalia_types::stats::DEFAULT_HISTORY_LEN as u64;

/// One aggregated per-period class rollup record: the summed member
/// statistics of the period and the number of distinct members contributing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPeriodRecord {
    /// Member statistics summed over every contributing object.
    pub stats: PeriodStats,
    /// Number of distinct objects that contributed to the period.
    pub objects: u64,
}

/// The statistics store shared by engines and the periodic optimiser.
pub struct StatisticsStore {
    db: Arc<ReplicatedStore>,
    local: DatacenterId,
}

impl StatisticsStore {
    /// Creates a statistics store on top of a replicated database, reading
    /// from the given local datacenter by preference.
    pub fn new(db: Arc<ReplicatedStore>, local: DatacenterId) -> Self {
        StatisticsStore { db, local }
    }

    fn obj_row(object_row_key: &str) -> String {
        format!("{OBJ_PREFIX}{object_row_key}")
    }

    fn class_row(class_id: &str) -> String {
        format!("{CLASS_PREFIX}{class_id}")
    }

    fn dirty_row(bucket: u64, shard: u64) -> String {
        format!("{DIRTY_PREFIX}{bucket:012}:{shard:02}")
    }

    fn dirty_bucket(timestamp: Timestamp) -> u64 {
        timestamp.secs / DIRTY_BUCKET_SECS
    }

    fn dirty_shard(object_row_key: &str) -> u64 {
        // FNV-1a over the key bytes: stable across runs (unlike the std
        // hasher's seed), cheap, and well-spread for MD5-hex row keys.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in object_row_key.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash % DIRTY_SHARDS
    }

    /// The first reachable node, preferring the local datacenter (the same
    /// read policy as [`ReplicatedStore::get_latest`]).
    fn read_node(&self) -> Option<Arc<NoSqlNode>> {
        self.db.read_node(self.local).cloned()
    }

    /// Records the statistics of one completed sampling period for an
    /// object and marks the object in the dirty-set index (tagged with its
    /// class when the caller knows it — the log aggregator always does).
    pub fn record_period(
        &self,
        object_row_key: &str,
        stats: &PeriodStats,
        timestamp: Timestamp,
    ) -> Result<()> {
        self.record_period_classified(object_row_key, None, stats, timestamp)
    }

    /// [`Self::record_period`] with the object's class supplied, so the
    /// dirty-set entry carries it and the optimiser can group the accessed
    /// set by class without reading any per-object metadata.
    pub fn record_period_classified(
        &self,
        object_row_key: &str,
        class_id: Option<&str>,
        stats: &PeriodStats,
        timestamp: Timestamp,
    ) -> Result<()> {
        let row = Self::obj_row(object_row_key);
        let column = format!("period:{:012}", stats.period);
        let value = json!({
            "period": stats.period,
            "storage": stats.storage.bytes(),
            "bw_in": stats.bw_in.bytes(),
            "bw_out": stats.bw_out.bytes(),
            "reads": stats.reads,
            "writes": stats.writes,
        });
        self.db.put(&row, &column, value, timestamp)?;
        self.mark_accessed(object_row_key, class_id, timestamp)
    }

    /// Marks an object accessed/modified in the dirty-set index: one cell in
    /// the sharded row of the timestamp's bucket, whose value is the
    /// object's class when known. The periodic optimiser's accessed-set
    /// fetch range-scans these rows instead of scanning every row's
    /// last-modified timestamp, and the class tags let it group the set
    /// with no metadata reads at all.
    pub fn mark_accessed(
        &self,
        object_row_key: &str,
        class_id: Option<&str>,
        timestamp: Timestamp,
    ) -> Result<()> {
        let row = Self::dirty_row(
            Self::dirty_bucket(timestamp),
            Self::dirty_shard(object_row_key),
        );
        let value = match class_id {
            Some(class_id) => json!(class_id),
            None => json!(true),
        };
        self.db.put(&row, object_row_key, value, timestamp)
    }

    /// Records the class an object belongs to (written once at insertion)
    /// and marks the object dirty — a freshly written object belongs in the
    /// optimiser's accessed set even before its first statistics flush.
    pub fn record_object_class(
        &self,
        object_row_key: &str,
        class_id: &str,
        timestamp: Timestamp,
    ) -> Result<()> {
        self.db.put(
            &Self::obj_row(object_row_key),
            "class",
            json!(class_id),
            timestamp,
        )?;
        self.mark_accessed(object_row_key, Some(class_id), timestamp)
    }

    /// Folds one pre-aggregated per-period **delta** into a class rollup:
    /// `stats` summed over `objects` distinct members, as the log
    /// aggregator computes per flush. Every delta lands under a unique
    /// column (never conflicts, associative at read time), so reading a
    /// class's usage series costs O(periods), not O(members × periods) —
    /// the amortisation §III-A1 asks for.
    pub fn record_class_period(
        &self,
        class_id: &str,
        stats: &PeriodStats,
        objects: u64,
        timestamp: Timestamp,
    ) -> Result<()> {
        let column = format!(
            "p:{:012}:{}:{}",
            stats.period, timestamp.secs, timestamp.seq
        );
        let value = json!({
            "storage": stats.storage.bytes(),
            "bw_in": stats.bw_in.bytes(),
            "bw_out": stats.bw_out.bytes(),
            "reads": stats.reads,
            "writes": stats.writes,
            "objects": objects,
        });
        self.db
            .put(&Self::class_row(class_id), &column, value, timestamp)
    }

    /// The class recorded for an object, if any.
    pub fn object_class(&self, object_row_key: &str) -> Option<String> {
        self.db
            .get_latest(self.local, &Self::obj_row(object_row_key), "class")
            .and_then(|c| c.value.as_str().map(str::to_string))
    }

    /// Reconstructs the access history of an object from its statistics row,
    /// keeping at most `max_periods` most recent periods.
    pub fn history(&self, object_row_key: &str, max_periods: usize) -> AccessHistory {
        let row = Self::obj_row(object_row_key);
        let mut history = AccessHistory::new(max_periods.max(1));
        // Period columns sort lexicographically because the period index is
        // zero-padded.
        let Some(node) = self.read_node() else {
            return history;
        };
        let mut periods: Vec<PeriodStats> = node
            .latest_cells_with_prefix(&row, "period:")
            .into_iter()
            .map(|(_, cell)| PeriodStats {
                period: cell.value["period"].as_u64().unwrap_or(0),
                storage: ByteSize::from_bytes(cell.value["storage"].as_u64().unwrap_or(0)),
                bw_in: ByteSize::from_bytes(cell.value["bw_in"].as_u64().unwrap_or(0)),
                bw_out: ByteSize::from_bytes(cell.value["bw_out"].as_u64().unwrap_or(0)),
                reads: cell.value["reads"].as_u64().unwrap_or(0),
                writes: cell.value["writes"].as_u64().unwrap_or(0),
            })
            .collect();
        periods.sort_by_key(|p| p.period);
        // Fill the gaps: a sampling period with no recorded accesses is a
        // real observation of zero activity, which the trend detector must
        // see (otherwise a burst followed by silence looks like a plateau).
        let mut previous: Option<&PeriodStats> = None;
        let mut filled: Vec<PeriodStats> = Vec::with_capacity(periods.len());
        for p in &periods {
            if let Some(prev) = previous {
                let mut missing = prev.period + 1;
                while missing < p.period {
                    filled.push(PeriodStats {
                        period: missing,
                        storage: prev.storage,
                        ..PeriodStats::empty(missing)
                    });
                    missing += 1;
                }
            }
            filled.push(*p);
            previous = Some(p);
        }
        for p in filled {
            history.push(p);
        }
        history
    }

    /// Object row keys accessed or modified at or after `since` — the set
    /// `A` the periodic optimiser shards across engines.
    ///
    /// Served by a **range scan** over the dirty-set index rows of the
    /// buckets `>= bucket(since)`: the fetch cost scales with the number of
    /// entries written since the previous procedure, never with the number
    /// of rows stored. Dirty entries always land in the bucket of their
    /// write timestamp, so `ts >= since` implies `bucket >= bucket(since)` —
    /// no qualifying entry can hide in an earlier bucket.
    pub fn objects_accessed_since(&self, since: Timestamp) -> Vec<String> {
        let mut keys = self.objects_accessed_since_with_cost(since).0;
        keys.sort_unstable();
        keys
    }

    /// [`Self::objects_accessed_since`] plus the number of index cells the
    /// range scan examined (tests pin that the fetch is proportional to the
    /// touched set, not the stored rows).
    pub fn objects_accessed_since_with_cost(&self, since: Timestamp) -> (Vec<String>, usize) {
        let (classified, scanned) = self.objects_accessed_since_classified(since);
        (
            classified.into_iter().map(|(key, _)| key).collect(),
            scanned,
        )
    }

    /// The accessed set with each entry's class tag (the value the log
    /// aggregator wrote into the dirty-set index), so the class-centric
    /// optimiser groups the set by class **without reading any per-object
    /// metadata**. `None` tags mark entries written before the object's
    /// class was known. Entries are deduplicated — the **newest classified**
    /// mark wins, so an object reclassified by an overwrite is grouped
    /// under its current class — and returned in deterministic first-seen
    /// index order, **not** sorted by key; sorting a 10⁴-entry fetch every
    /// cycle would cost more than the scan itself, and the class sweep
    /// re-sorts per class anyway. Also returns the number of index cells
    /// scanned.
    pub fn objects_accessed_since_classified(
        &self,
        since: Timestamp,
    ) -> (Vec<(String, Option<String>)>, usize) {
        let start = Self::dirty_row(Self::dirty_bucket(since), 0);
        let mut entries: Vec<(String, Option<String>)> = Vec::new();
        // Per entry: the timestamp of the classified mark currently held
        // (ZERO while unclassified).
        let mut tag_ts: Vec<Timestamp> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut scanned = 0usize;
        // Union over every reachable replica — matching the replaced
        // `modified_since` semantics: the fetch must not miss a mark a
        // lagging replica never received, because the optimiser's
        // `last_run` watermark advances past it and would filter the
        // healed cell forever. The newest-classified-wins merge below is
        // replica-order independent. The visit is zero-copy: only
        // qualifying keys (and their class tags) are ever cloned out of
        // the store, once per distinct object.
        for node in self.db.nodes().iter().filter(|n| n.is_up()) {
            node.visit_range_latest(&start, DIRTY_END, |_, column, cell| {
                scanned += 1;
                if cell.timestamp < since {
                    return;
                }
                let class = cell.value.as_str();
                match index.get(column) {
                    Some(&at) => {
                        // The newest classified mark wins: a classified tag
                        // beats an unclassified one, and a later class
                        // (object reclassified by an overwrite) beats an
                        // earlier one.
                        if class.is_some() && cell.timestamp > tag_ts[at] {
                            entries[at].1 = class.map(str::to_string);
                            tag_ts[at] = cell.timestamp;
                        }
                    }
                    None => {
                        index.insert(column.to_string(), entries.len());
                        tag_ts.push(if class.is_some() {
                            cell.timestamp
                        } else {
                            Timestamp::ZERO
                        });
                        entries.push((column.to_string(), class.map(str::to_string)));
                    }
                }
            });
        }
        (entries, scanned)
    }

    /// The seed's accessed-set fetch: a full scan of every row's
    /// last-modified timestamp. Kept as the per-object baseline the
    /// class-centric pipeline is benchmarked (and differential-tested)
    /// against.
    pub fn objects_accessed_since_scan(&self, since: Timestamp) -> Vec<String> {
        self.db
            .modified_since(since)
            .into_iter()
            .filter_map(|k| k.strip_prefix(OBJ_PREFIX).map(str::to_string))
            .collect()
    }

    /// Drops every dirty-set index row strictly older than `cutoff`'s
    /// bucket. Safe to call with the previous procedure's `since`: entries
    /// in older buckets have timestamps `< cutoff` and can never qualify for
    /// a future fetch (whose `since` only grows).
    pub fn prune_dirty_before(&self, cutoff: Timestamp) -> usize {
        let end = Self::dirty_row(Self::dirty_bucket(cutoff), 0);
        let mut stale: Vec<String> = self
            .db
            .nodes()
            .iter()
            .filter(|n| n.is_up())
            .flat_map(|n| n.range_keys(DIRTY_PREFIX, &end))
            .collect();
        stale.sort_unstable();
        stale.dedup();
        for row_key in &stale {
            self.db.delete_row(row_key);
        }
        stale.len()
    }

    /// Records a per-period resource-usage sample for a class of objects.
    pub fn record_class_usage(
        &self,
        class_id: &str,
        usage: &ResourceUsage,
        timestamp: Timestamp,
    ) -> Result<()> {
        let value = json!({
            "storage_gb_hours": usage.storage_gb_hours,
            "bw_in": usage.bw_in.bytes(),
            "bw_out": usage.bw_out.bytes(),
            "ops": usage.ops,
        });
        self.db.put(
            &Self::class_row(class_id),
            &format!("usage:{}:{}", timestamp.secs, timestamp.seq),
            value,
            timestamp,
        )
    }

    /// Mean per-period resource usage observed for a class, if any sample
    /// exists. This feeds the first placement of brand-new objects
    /// (§III-A1, Fig. 6).
    pub fn mean_class_usage(&self, class_id: &str) -> Option<ResourceUsage> {
        let row = Self::class_row(class_id);
        let node = self.db.nodes().iter().find(|n| n.is_up())?.clone();
        let samples: Vec<ResourceUsage> = node
            .latest_cells_with_prefix(&row, "usage:")
            .into_iter()
            .map(|(_, cell)| ResourceUsage {
                storage_gb_hours: cell.value["storage_gb_hours"].as_f64().unwrap_or(0.0),
                bw_in: ByteSize::from_bytes(cell.value["bw_in"].as_u64().unwrap_or(0)),
                bw_out: ByteSize::from_bytes(cell.value["bw_out"].as_u64().unwrap_or(0)),
                ops: cell.value["ops"].as_u64().unwrap_or(0),
            })
            .collect();
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let total: ResourceUsage = samples.into_iter().sum();
        Some(total.scale(1.0 / n))
    }

    /// The class's per-period rollup, aggregated at read time: for each of
    /// the `max_periods` most recent recorded periods, the summed member
    /// statistics and the number of distinct contributing members, oldest
    /// first. One row read per class — the class-centric optimiser reads
    /// `K` of these per cycle instead of one history row per object.
    pub fn class_period_records(
        &self,
        class_id: &str,
        max_periods: usize,
    ) -> Vec<(u64, ClassPeriodRecord)> {
        let Some(node) = self.read_node() else {
            return Vec::new();
        };
        let mut by_period: std::collections::BTreeMap<u64, ClassPeriodRecord> =
            std::collections::BTreeMap::new();
        // Every delta column is a pre-aggregated per-flush contribution
        // (summed member statistics + distinct-object count); period-wise
        // addition over them is associative, so any write interleaving
        // reads back to the same aggregate.
        for (column, cell) in node.latest_cells_with_prefix(&Self::class_row(class_id), "p:") {
            let Some(period) = column
                .strip_prefix("p:")
                .and_then(|rest| rest.get(..12))
                .and_then(|p| p.parse::<u64>().ok())
            else {
                continue;
            };
            let entry = by_period.entry(period).or_insert(ClassPeriodRecord {
                stats: PeriodStats::empty(period),
                objects: 0,
            });
            entry.objects += cell.value["objects"].as_u64().unwrap_or(0);
            entry.stats.storage +=
                ByteSize::from_bytes(cell.value["storage"].as_u64().unwrap_or(0));
            entry.stats.bw_in += ByteSize::from_bytes(cell.value["bw_in"].as_u64().unwrap_or(0));
            entry.stats.bw_out += ByteSize::from_bytes(cell.value["bw_out"].as_u64().unwrap_or(0));
            entry.stats.reads += cell.value["reads"].as_u64().unwrap_or(0);
            entry.stats.writes += cell.value["writes"].as_u64().unwrap_or(0);
        }
        let mut records: Vec<(u64, ClassPeriodRecord)> = by_period.into_iter().collect();
        if records.len() > max_periods.max(1) {
            records.drain(..records.len() - max_periods.max(1));
        }
        records
    }

    /// Garbage-collects the statistics tables: caps every class's lifetime
    /// and usage sample columns at [`MAX_CLASS_SAMPLES`] (oldest dropped)
    /// and drops rollup columns older than [`CLASS_ROLLUP_RETENTION`]
    /// sampling periods. Returns the number of columns removed. Together
    /// with [`Self::delete_object_stats`] and [`Self::prune_dirty_before`]
    /// this bounds the statistics footprint by live objects + known classes.
    pub fn gc_statistics(&self, current_period: u64) -> usize {
        let Some(node) = self.read_node() else {
            return 0;
        };
        let rollup_cutoff = current_period.saturating_sub(CLASS_ROLLUP_RETENTION);
        let mut removed = 0usize;
        for class_row in node.scan_prefix(CLASS_PREFIX) {
            for (column, _) in node.latest_cells_with_prefix(&class_row, "p:") {
                let stale = column
                    .strip_prefix("p:")
                    .and_then(|rest| rest.get(..12))
                    .and_then(|p| p.parse::<u64>().ok())
                    .is_some_and(|period| period < rollup_cutoff);
                if stale {
                    self.db.delete_column(&class_row, &column);
                    removed += 1;
                }
            }
            for prefix in ["lifetime:", "usage:"] {
                let mut samples: Vec<(Timestamp, String)> = node
                    .latest_cells_with_prefix(&class_row, prefix)
                    .into_iter()
                    .map(|(column, cell)| (cell.timestamp, column))
                    .collect();
                if samples.len() > MAX_CLASS_SAMPLES {
                    samples.sort_unstable();
                    for (_, column) in samples.drain(..samples.len() - MAX_CLASS_SAMPLES) {
                        self.db.delete_column(&class_row, &column);
                        removed += 1;
                    }
                }
            }
        }
        removed
    }

    /// Records the observed lifetime (in hours) of a deleted object of a
    /// class. These samples build the class's deletion-time distribution
    /// (paper Fig. 5, left).
    pub fn record_class_lifetime(
        &self,
        class_id: &str,
        lifetime_hours: f64,
        timestamp: Timestamp,
    ) -> Result<()> {
        self.db.put(
            &Self::class_row(class_id),
            &format!("lifetime:{}:{}", timestamp.secs, timestamp.seq),
            json!(lifetime_hours),
            timestamp,
        )
    }

    /// All recorded lifetime samples (hours) of a class.
    pub fn class_lifetimes(&self, class_id: &str) -> Vec<f64> {
        let row = Self::class_row(class_id);
        let Some(node) = self.db.nodes().iter().find(|n| n.is_up()) else {
            return Vec::new();
        };
        let mut lifetimes: Vec<f64> = node
            .latest_cells_with_prefix(&row, "lifetime:")
            .into_iter()
            .filter_map(|(_, cell)| cell.value.as_f64())
            .collect();
        lifetimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lifetimes
    }

    /// All class ids with at least one statistics row.
    pub fn known_classes(&self) -> Vec<String> {
        let Some(node) = self.db.nodes().iter().find(|n| n.is_up()) else {
            return Vec::new();
        };
        node.scan_prefix(CLASS_PREFIX)
            .into_iter()
            .filter_map(|k| k.strip_prefix(CLASS_PREFIX).map(str::to_string))
            .collect()
    }

    /// Deletes the statistics row of an object (after the object is deleted
    /// and its lifetime has been folded into its class statistics).
    pub fn delete_object_stats(&self, object_row_key: &str) {
        self.db.delete_row(&Self::obj_row(object_row_key));
    }

    /// The underlying replicated database (used by map-reduce jobs).
    pub fn database(&self) -> &Arc<ReplicatedStore> {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> StatisticsStore {
        StatisticsStore::new(
            Arc::new(ReplicatedStore::with_datacenters(2)),
            DatacenterId::new(0),
        )
    }

    fn stats(period: u64, reads: u64, writes: u64) -> PeriodStats {
        PeriodStats {
            period,
            storage: ByteSize::from_mb(1),
            bw_in: ByteSize::from_kb(writes * 100),
            bw_out: ByteSize::from_kb(reads * 100),
            reads,
            writes,
        }
    }

    #[test]
    fn per_object_history_roundtrip() {
        let s = store();
        for period in 0..5 {
            s.record_period(
                "obj1",
                &stats(period, period * 2, 1),
                Timestamp::new(period * 3600, 0),
            )
            .unwrap();
        }
        let history = s.history("obj1", 100);
        assert_eq!(history.len(), 5);
        assert_eq!(history.records()[0].period, 0);
        assert_eq!(history.records()[4].period, 4);
        assert_eq!(history.records()[4].reads, 8);
        // Bounded history keeps only the most recent periods.
        let bounded = s.history("obj1", 2);
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.records()[0].period, 3);
        // Unknown object yields an empty history.
        assert!(s.history("unknown", 10).is_empty());
    }

    #[test]
    fn object_class_roundtrip() {
        let s = store();
        s.record_object_class("obj1", "class-abc", Timestamp::new(1, 0))
            .unwrap();
        assert_eq!(s.object_class("obj1").unwrap(), "class-abc");
        assert!(s.object_class("other").is_none());
    }

    #[test]
    fn objects_accessed_since_filters_by_timestamp() {
        let s = store();
        s.record_period("obj1", &stats(0, 1, 0), Timestamp::new(100, 0))
            .unwrap();
        s.record_period("obj2", &stats(0, 1, 0), Timestamp::new(200, 0))
            .unwrap();
        s.record_class_usage(
            "classX",
            &ResourceUsage::operations(1),
            Timestamp::new(300, 0),
        )
        .unwrap();
        let recent = s.objects_accessed_since(Timestamp::new(150, 0));
        assert_eq!(recent, vec!["obj2".to_string()]);
        let all = s.objects_accessed_since(Timestamp::ZERO);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn accessed_set_fetch_scans_only_recent_buckets() {
        let s = store();
        // 100 objects touched in bucket 0…
        for i in 0..100 {
            s.record_period(
                &format!("old{i}"),
                &stats(0, 1, 0),
                Timestamp::new(10 + i, 0),
            )
            .unwrap();
        }
        // …and 3 objects in bucket 1.
        for i in 0..3 {
            s.record_period(
                &format!("fresh{i}"),
                &stats(1, 1, 0),
                Timestamp::new(DIRTY_BUCKET_SECS + 5 + i, 0),
            )
            .unwrap();
        }
        let since = Timestamp::new(DIRTY_BUCKET_SECS, 0);
        let (mut keys, scanned) = s.objects_accessed_since_with_cost(since);
        keys.sort_unstable();
        assert_eq!(keys, vec!["fresh0", "fresh1", "fresh2"]);
        // The range scan starts at bucket(since): the 100 bucket-0 entries
        // (×2 replicas) are never visited.
        assert!(
            scanned <= 3 * 2,
            "fetch scanned {scanned} cells for 3 touched objects"
        );
        // The full set is still reachable from the epoch.
        assert_eq!(s.objects_accessed_since(Timestamp::ZERO).len(), 103);
    }

    #[test]
    fn prune_dirty_drops_consumed_buckets() {
        let s = store();
        s.record_period("a", &stats(0, 1, 0), Timestamp::new(10, 0))
            .unwrap();
        s.record_period(
            "b",
            &stats(1, 1, 0),
            Timestamp::new(DIRTY_BUCKET_SECS + 1, 0),
        )
        .unwrap();
        let pruned = s.prune_dirty_before(Timestamp::new(DIRTY_BUCKET_SECS, 0));
        assert!(pruned >= 1, "bucket-0 dirty rows must be dropped");
        // The pruned bucket's entries are gone; the newer bucket survives.
        assert_eq!(s.objects_accessed_since(Timestamp::ZERO), vec!["b"]);
        // Pruning again is a no-op.
        assert_eq!(
            s.prune_dirty_before(Timestamp::new(DIRTY_BUCKET_SECS, 0)),
            0
        );
    }

    #[test]
    fn freshly_written_object_is_dirty_before_any_flush() {
        let s = store();
        s.record_object_class("newborn", "class-x", Timestamp::new(50, 0))
            .unwrap();
        assert_eq!(s.objects_accessed_since(Timestamp::ZERO), vec!["newborn"]);
    }

    #[test]
    fn class_rollup_sums_flush_deltas_per_period() {
        let s = store();
        // One aggregator flush: a period-0 delta over two members and a
        // period-1 delta over one (summed member statistics + count).
        let mut p0 = stats(0, 6, 1);
        p0.storage = ByteSize::from_mb(2);
        s.record_class_period("cls", &p0, 2, Timestamp::new(3600, 0))
            .unwrap();
        s.record_class_period("cls", &stats(1, 6, 0), 1, Timestamp::new(3600, 1))
            .unwrap();
        let records = s.class_period_records("cls", 100);
        assert_eq!(records.len(), 2);
        let (p0, r0) = records[0];
        assert_eq!(p0, 0);
        assert_eq!(r0.objects, 2);
        assert_eq!(r0.stats.reads, 6);
        assert_eq!(r0.stats.writes, 1);
        assert_eq!(r0.stats.storage, ByteSize::from_mb(2));
        let (p1, r1) = records[1];
        assert_eq!(p1, 1);
        assert_eq!(r1.objects, 1);
        assert_eq!(r1.stats.reads, 6);
        // A later flush contributing to period 0 again *adds* — every delta
        // lands under a unique column, so reads aggregate associatively.
        s.record_class_period("cls", &stats(0, 4, 0), 1, Timestamp::new(9000, 0))
            .unwrap();
        let records = s.class_period_records("cls", 100);
        assert_eq!(records[0].1.objects, 3);
        assert_eq!(records[0].1.stats.reads, 10);
        // The period bound keeps only the most recent periods.
        let bounded = s.class_period_records("cls", 1);
        assert_eq!(bounded.len(), 1);
        assert_eq!(bounded[0].0, 1);
        // Unknown class: empty.
        assert!(s.class_period_records("nope", 10).is_empty());
    }

    #[test]
    fn accessed_set_carries_class_tags() {
        let s = store();
        s.record_object_class("obj1", "cls-a", Timestamp::new(10, 0))
            .unwrap();
        // An unclassified mark (no class known at write time)…
        s.record_period("obj2", &stats(0, 1, 0), Timestamp::new(20, 0))
            .unwrap();
        // …and a classified flush of obj1 in a later bucket.
        s.record_period_classified(
            "obj1",
            Some("cls-a"),
            &stats(1, 2, 0),
            Timestamp::new(DIRTY_BUCKET_SECS + 5, 0),
        )
        .unwrap();
        let (mut keys, _) = s.objects_accessed_since_classified(Timestamp::ZERO);
        keys.sort_unstable();
        assert_eq!(
            keys,
            vec![
                ("obj1".to_string(), Some("cls-a".to_string())),
                ("obj2".to_string(), None),
            ]
        );
    }

    #[test]
    fn gc_caps_class_samples_and_rollup_retention() {
        let s = store();
        s.record_object_class("obj", "c", Timestamp::new(1, 0))
            .unwrap();
        for i in 0..MAX_CLASS_SAMPLES + 40 {
            s.record_class_lifetime("c", i as f64, Timestamp::new(10 + i as u64, 0))
                .unwrap();
            s.record_class_usage(
                "c",
                &ResourceUsage::operations(i as u64),
                Timestamp::new(10 + i as u64, 1),
            )
            .unwrap();
        }
        // One rollup delta far in the past, one recent.
        s.record_class_period("c", &stats(0, 1, 0), 1, Timestamp::new(5000, 0))
            .unwrap();
        s.record_class_period(
            "c",
            &stats(CLASS_ROLLUP_RETENTION + 100, 1, 0),
            1,
            Timestamp::new(6000, 0),
        )
        .unwrap();
        let removed = s.gc_statistics(CLASS_ROLLUP_RETENTION + 101);
        assert!(removed >= 81, "removed only {removed} columns");
        let lifetimes = s.class_lifetimes("c");
        assert_eq!(lifetimes.len(), MAX_CLASS_SAMPLES);
        // The oldest samples were the ones dropped.
        assert_eq!(lifetimes[0], 40.0);
        let records = s.class_period_records("c", 100);
        assert_eq!(records.len(), 1, "over-retention rollup must be dropped");
        assert_eq!(records[0].0, CLASS_ROLLUP_RETENTION + 100);
        // A second pass finds nothing left to remove.
        assert_eq!(s.gc_statistics(CLASS_ROLLUP_RETENTION + 101), 0);
    }

    #[test]
    fn class_usage_mean() {
        let s = store();
        assert!(s.mean_class_usage("c").is_none());
        s.record_class_usage(
            "c",
            &ResourceUsage {
                storage_gb_hours: 1.0,
                bw_in: ByteSize::from_mb(10),
                bw_out: ByteSize::from_mb(20),
                ops: 10,
            },
            Timestamp::new(1, 0),
        )
        .unwrap();
        s.record_class_usage(
            "c",
            &ResourceUsage {
                storage_gb_hours: 3.0,
                bw_in: ByteSize::from_mb(30),
                bw_out: ByteSize::from_mb(40),
                ops: 30,
            },
            Timestamp::new(2, 0),
        )
        .unwrap();
        let mean = s.mean_class_usage("c").unwrap();
        assert!((mean.storage_gb_hours - 2.0).abs() < 1e-12);
        assert_eq!(mean.bw_in, ByteSize::from_mb(20));
        assert_eq!(mean.bw_out, ByteSize::from_mb(30));
        assert_eq!(mean.ops, 20);
    }

    #[test]
    fn class_lifetimes_accumulate_sorted() {
        let s = store();
        s.record_class_lifetime("c", 5.0, Timestamp::new(1, 0))
            .unwrap();
        s.record_class_lifetime("c", 2.0, Timestamp::new(2, 0))
            .unwrap();
        s.record_class_lifetime("c", 3.5, Timestamp::new(3, 0))
            .unwrap();
        assert_eq!(s.class_lifetimes("c"), vec![2.0, 3.5, 5.0]);
        assert!(s.class_lifetimes("unknown").is_empty());
        assert_eq!(s.known_classes(), vec!["c".to_string()]);
    }

    #[test]
    fn delete_object_stats_removes_row() {
        let s = store();
        s.record_period("obj1", &stats(0, 1, 0), Timestamp::new(1, 0))
            .unwrap();
        assert_eq!(s.history("obj1", 10).len(), 1);
        s.delete_object_stats("obj1");
        assert!(s.history("obj1", 10).is_empty());
    }

    #[test]
    fn statistics_survive_datacenter_failure() {
        let s = store();
        s.record_period("obj1", &stats(0, 3, 1), Timestamp::new(1, 0))
            .unwrap();
        // Local datacenter goes down; history is served by the replica.
        s.database().nodes()[0].set_up(false);
        let history = s.history("obj1", 10);
        assert_eq!(history.len(), 1);
        assert_eq!(history.records()[0].reads, 3);
    }
}
