//! Log collection and aggregation.
//!
//! The paper collects read/write access logs with a distributed, reliable
//! log service (Flume/Scribe): a *log agent* at each engine buffers the
//! operations it served, and *log aggregators* periodically pull those
//! buffers, aggregate them per object and sampling period, and write the
//! result to the statistics database (§III-C2).

use crate::model::Timestamp;
use crate::stats::StatisticsStore;
use parking_lot::Mutex;
use scalia_types::ids::EngineId;
use scalia_types::size::ByteSize;
use scalia_types::stats::PeriodStats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The kind of access an engine served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read (GET) of the object.
    Read,
    /// A write (PUT) of the object.
    Write,
}

/// One access-log record emitted by an engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessLogRecord {
    /// Engine that served the request.
    pub engine: EngineId,
    /// Metadata row key of the object.
    pub object_row_key: String,
    /// Sampling period in which the access happened.
    pub period: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Bytes transferred to/from the client.
    pub bytes: ByteSize,
    /// Current size of the object (for storage accounting).
    pub object_size: ByteSize,
}

/// A per-engine log agent buffering access records.
#[derive(Debug, Default)]
pub struct LogAgent {
    buffer: Mutex<Vec<AccessLogRecord>>,
}

impl LogAgent {
    /// Creates an empty agent.
    pub fn new() -> Self {
        LogAgent::default()
    }

    /// Creates an agent wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Appends a record to the buffer.
    pub fn log(&self, record: AccessLogRecord) {
        self.buffer.lock().push(record);
    }

    /// Number of buffered records.
    pub fn pending(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Drains the buffer, returning all buffered records.
    pub fn drain(&self) -> Vec<AccessLogRecord> {
        std::mem::take(&mut *self.buffer.lock())
    }
}

/// A log aggregator pulling from several agents and writing per-object,
/// per-period statistics to the statistics store.
pub struct LogAggregator {
    agents: Vec<Arc<LogAgent>>,
}

impl LogAggregator {
    /// Creates an aggregator over the given agents.
    pub fn new(agents: Vec<Arc<LogAgent>>) -> Self {
        LogAggregator { agents }
    }

    /// Drains every agent, aggregates the records per `(object, period)` and
    /// writes the aggregates to `stats` — each tagged with the object's
    /// class (one point read of the class recorded at insertion, so the
    /// dirty-set index carries the tag and the class-centric optimiser can
    /// group the accessed set with no metadata reads). The same pass folds
    /// the per-object aggregates into **one pre-aggregated delta per
    /// `(class, period)`** ([`StatisticsStore::record_class_period`]), so a
    /// class's usage series costs O(periods) to read, not
    /// O(members × periods). Returns the number of `(object, period)`
    /// aggregates written.
    ///
    /// The aggregator flushes each sampling period once (the cluster ticks
    /// at period boundaries); a re-flush of the same `(object, period)`
    /// *replaces* the per-object column but *adds* a rollup delta — the
    /// rollup keeps the complete count, the object column the latest flush.
    pub fn flush(&self, stats: &StatisticsStore, timestamp: Timestamp) -> usize {
        let mut grouped: BTreeMap<(String, u64), PeriodStats> = BTreeMap::new();
        for agent in &self.agents {
            for record in agent.drain() {
                let entry = grouped
                    .entry((record.object_row_key.clone(), record.period))
                    .or_insert_with(|| PeriodStats::empty(record.period));
                entry.storage = record.object_size;
                match record.kind {
                    AccessKind::Read => {
                        entry.reads += 1;
                        entry.bw_out += record.bytes;
                    }
                    AccessKind::Write => {
                        entry.writes += 1;
                        entry.bw_in += record.bytes;
                    }
                }
            }
        }
        let mut classes: BTreeMap<String, Option<String>> = BTreeMap::new();
        let mut rollups: BTreeMap<(String, u64), (PeriodStats, u64)> = BTreeMap::new();
        let mut written = 0;
        // Every write of one flush shares the caller's timestamp: each
        // targets a distinct column (rollup column names embed the
        // timestamp), so nothing conflicts — and no timestamp beyond the
        // allocated one is ever fabricated. (The previous scheme stamped
        // `seq + i`, minting marks that post-dated timestamps the clock
        // handed out *later* — the optimiser's `last_run` watermark would
        // then re-admit the whole previous window as freshly accessed.)
        for ((object_row_key, period), period_stats) in &grouped {
            let class = classes
                .entry(object_row_key.clone())
                .or_insert_with(|| stats.object_class(object_row_key));
            if stats
                .record_period_classified(object_row_key, class.as_deref(), period_stats, timestamp)
                .is_ok()
            {
                written += 1;
                if let Some(class_id) = class {
                    let (delta, objects) = rollups
                        .entry((class_id.clone(), *period))
                        .or_insert_with(|| (PeriodStats::empty(*period), 0));
                    delta.storage += period_stats.storage;
                    delta.bw_in += period_stats.bw_in;
                    delta.bw_out += period_stats.bw_out;
                    delta.reads += period_stats.reads;
                    delta.writes += period_stats.writes;
                    *objects += 1;
                }
            }
        }
        for ((class_id, _period), (delta, objects)) in &rollups {
            stats
                .record_class_period(class_id, delta, *objects, timestamp)
                .ok();
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::ReplicatedStore;
    use scalia_types::ids::DatacenterId;

    fn stats_store() -> StatisticsStore {
        StatisticsStore::new(
            Arc::new(ReplicatedStore::with_datacenters(1)),
            DatacenterId::new(0),
        )
    }

    fn read_record(object: &str, period: u64, kb: u64) -> AccessLogRecord {
        AccessLogRecord {
            engine: EngineId::new(0),
            object_row_key: object.to_string(),
            period,
            kind: AccessKind::Read,
            bytes: ByteSize::from_kb(kb),
            object_size: ByteSize::from_kb(kb),
        }
    }

    #[test]
    fn agent_buffers_and_drains() {
        let agent = LogAgent::new();
        assert_eq!(agent.pending(), 0);
        agent.log(read_record("obj", 0, 10));
        agent.log(read_record("obj", 0, 10));
        assert_eq!(agent.pending(), 2);
        assert_eq!(agent.drain().len(), 2);
        assert_eq!(agent.pending(), 0);
        assert!(agent.drain().is_empty());
    }

    #[test]
    fn aggregator_groups_by_object_and_period() {
        let stats = stats_store();
        let a1 = LogAgent::shared();
        let a2 = LogAgent::shared();
        // Two reads of obj1 in period 0 from two engines, one write of obj1
        // in period 1, one read of obj2 in period 0.
        a1.log(read_record("obj1", 0, 100));
        a2.log(read_record("obj1", 0, 100));
        a2.log(AccessLogRecord {
            engine: EngineId::new(1),
            object_row_key: "obj1".to_string(),
            period: 1,
            kind: AccessKind::Write,
            bytes: ByteSize::from_kb(100),
            object_size: ByteSize::from_kb(100),
        });
        a1.log(read_record("obj2", 0, 50));

        let aggregator = LogAggregator::new(vec![a1.clone(), a2.clone()]);
        let written = aggregator.flush(&stats, Timestamp::new(3600, 0));
        assert_eq!(written, 3);

        let h1 = stats.history("obj1", 10);
        assert_eq!(h1.len(), 2);
        assert_eq!(h1.records()[0].reads, 2);
        assert_eq!(h1.records()[0].bw_out, ByteSize::from_kb(200));
        assert_eq!(h1.records()[1].writes, 1);
        assert_eq!(h1.records()[1].bw_in, ByteSize::from_kb(100));

        let h2 = stats.history("obj2", 10);
        assert_eq!(h2.len(), 1);
        assert_eq!(h2.records()[0].reads, 1);

        // Agents were drained by the flush.
        assert_eq!(a1.pending(), 0);
        assert_eq!(a2.pending(), 0);
    }

    #[test]
    fn flush_with_no_records_writes_nothing() {
        let stats = stats_store();
        let aggregator = LogAggregator::new(vec![LogAgent::shared()]);
        assert_eq!(aggregator.flush(&stats, Timestamp::new(1, 0)), 0);
    }
}
