//! # scalia-metastore
//!
//! The metadata / statistics database substrate of the Scalia reproduction.
//!
//! The paper's database layer (§III-C) is a multi-master NoSQL store
//! (Cassandra in the prototype) holding (a) object metadata — striping
//! information, policies, provider settings — and (b) per-object access
//! statistics fed by a distributed log-collection pipeline, aggregated with
//! map-reduce jobs. Writes may happen concurrently in several datacenters;
//! conflicts are detected and resolved with multi-version concurrency
//! control (MVCC), keeping the freshest version.
//!
//! This crate rebuilds that substrate in process:
//!
//! * [`model`] — the wide-row data model: rows of columns of timestamped
//!   versioned cells.
//! * [`store`] — a single database node with put/get/scan and
//!   modified-since queries.
//! * [`mvcc`] — conflict detection and latest-timestamp resolution.
//! * [`replication`] — a multi-datacenter replicated store with partition
//!   tolerance, hinted handoff and anti-entropy synchronisation.
//! * [`stats`] — the statistics tables: per-object access history,
//!   per-class resource usage and lifetime distributions.
//! * [`logagg`] — the log agent / log aggregator pipeline that moves access
//!   logs from engines into the statistics tables.
//! * [`mapreduce`] — parallel map-reduce jobs over the rows of a node, used
//!   to refresh per-class statistics.
//! * [`journal`] — the write-ahead journal and checkpoint format that make
//!   replicated-store mutations (and the engine's multi-op metadata
//!   commits) atomic across a crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod logagg;
pub mod mapreduce;
pub mod model;
pub mod mvcc;
pub mod replication;
pub mod stats;
pub mod store;

pub use journal::{JournalOp, JournalRecord, StoreCheckpoint, WriteAheadJournal};
pub use logagg::{AccessLogRecord, LogAgent, LogAggregator};
pub use model::{Cell, Timestamp};
pub use replication::ReplicatedStore;
pub use stats::StatisticsStore;
pub use store::NoSqlNode;

/// Commonly used items.
pub mod prelude {
    pub use crate::logagg::{AccessLogRecord, LogAgent, LogAggregator};
    pub use crate::model::{Cell, Timestamp};
    pub use crate::replication::ReplicatedStore;
    pub use crate::stats::StatisticsStore;
    pub use crate::store::NoSqlNode;
}
