//! The wide-row data model.
//!
//! Rows are addressed by a string row key (in Scalia:
//! `MD5(container | key)` for metadata, class hashes for statistics). Each
//! row holds named columns; each column holds one or more timestamped
//! versions (MVCC). This mirrors the Cassandra-style model sketched in the
//! paper's Figs. 6 and 10.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// A logical timestamp attached to every written cell.
///
/// The paper requires engines to be time-synchronised (NTP) so the freshest
/// version wins on conflict; the reproduction uses the simulation time in
/// seconds, extended with a sequence number to break ties deterministically.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp {
    /// Simulated wall-clock seconds.
    pub secs: u64,
    /// Tie-breaking sequence number (e.g. engine id or write counter).
    pub seq: u64,
}

impl Timestamp {
    /// Creates a timestamp.
    pub const fn new(secs: u64, seq: u64) -> Self {
        Timestamp { secs, seq }
    }

    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp { secs: 0, seq: 0 };
}

/// One version of a column value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// The stored value (JSON so heterogeneous metadata fits one model).
    pub value: Value,
    /// Write timestamp.
    pub timestamp: Timestamp,
}

impl Cell {
    /// Creates a cell.
    pub fn new(value: Value, timestamp: Timestamp) -> Self {
        Cell { value, timestamp }
    }
}

/// A column: a list of versions, kept sorted by ascending timestamp.
pub type Column = Vec<Cell>;

/// A row: named columns.
pub type Row = BTreeMap<String, Column>;

/// Inserts a cell into a column, keeping versions sorted by timestamp and
/// dropping an exact-duplicate timestamp write (last write wins for the same
/// timestamp).
pub fn insert_version(column: &mut Column, cell: Cell) {
    match column.binary_search_by(|c| c.timestamp.cmp(&cell.timestamp)) {
        Ok(pos) => column[pos] = cell,
        Err(pos) => column.insert(pos, cell),
    }
}

/// Returns the latest version of a column, if any.
pub fn latest(column: &Column) -> Option<&Cell> {
    column.last()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn timestamps_order_by_secs_then_seq() {
        assert!(Timestamp::new(5, 0) > Timestamp::new(4, 99));
        assert!(Timestamp::new(5, 2) > Timestamp::new(5, 1));
        assert_eq!(Timestamp::new(3, 3), Timestamp::new(3, 3));
        assert_eq!(Timestamp::ZERO, Timestamp::new(0, 0));
    }

    #[test]
    fn insert_version_keeps_sorted_order() {
        let mut col = Column::new();
        insert_version(&mut col, Cell::new(json!(2), Timestamp::new(2, 0)));
        insert_version(&mut col, Cell::new(json!(1), Timestamp::new(1, 0)));
        insert_version(&mut col, Cell::new(json!(3), Timestamp::new(3, 0)));
        let values: Vec<i64> = col.iter().map(|c| c.value.as_i64().unwrap()).collect();
        assert_eq!(values, vec![1, 2, 3]);
        assert_eq!(latest(&col).unwrap().value, json!(3));
    }

    #[test]
    fn same_timestamp_overwrites() {
        let mut col = Column::new();
        insert_version(&mut col, Cell::new(json!("a"), Timestamp::new(1, 0)));
        insert_version(&mut col, Cell::new(json!("b"), Timestamp::new(1, 0)));
        assert_eq!(col.len(), 1);
        assert_eq!(col[0].value, json!("b"));
    }

    #[test]
    fn latest_of_empty_column_is_none() {
        assert!(latest(&Column::new()).is_none());
    }
}
