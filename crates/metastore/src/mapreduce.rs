//! Parallel map-reduce jobs over database rows.
//!
//! The paper refreshes per-class statistics and lifetime distributions
//! "periodically using map-reduce jobs in the database layer" (§III-A1).
//! This module provides a small data-parallel map-reduce runner over the
//! rows of a [`NoSqlNode`] (powered by rayon, per the HPC guides) plus the
//! concrete job that aggregates per-class lifetime distributions.

use crate::model::Row;
use crate::store::NoSqlNode;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Runs a map-reduce job over a snapshot of the node's rows.
///
/// `map` emits zero or more `(key, value)` pairs per row; `reduce` folds all
/// values of one key into a single result. Rows are mapped in parallel.
pub fn map_reduce<K, V, R>(
    node: &NoSqlNode,
    map: impl Fn(&str, &Row) -> Vec<(K, V)> + Sync,
    reduce: impl Fn(&K, Vec<V>) -> R + Sync,
) -> BTreeMap<K, R>
where
    K: Ord + Send + Clone,
    V: Send,
    R: Send,
{
    let snapshot = node.snapshot();
    let pairs: Vec<(K, V)> = snapshot
        .par_iter()
        .flat_map_iter(|(key, row)| map(key, row))
        .collect();

    let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        grouped.entry(k).or_default().push(v);
    }

    grouped
        .into_par_iter()
        .map(|(k, vs)| {
            let r = reduce(&k, vs);
            (k, r)
        })
        .collect::<Vec<(K, R)>>()
        .into_iter()
        .collect()
}

/// Summary statistics of the lifetime distribution of one object class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLifetimeSummary {
    /// Number of lifetime samples.
    pub samples: usize,
    /// Mean lifetime in hours.
    pub mean_hours: f64,
    /// Maximum observed lifetime in hours.
    pub max_hours: f64,
}

/// A map-reduce job computing, for every class row, the summary of its
/// lifetime samples.
pub fn class_lifetime_summaries(node: &NoSqlNode) -> BTreeMap<String, ClassLifetimeSummary> {
    map_reduce(
        node,
        |row_key, row| {
            let Some(class_id) = row_key.strip_prefix("stats:class:") else {
                return Vec::new();
            };
            row.iter()
                .filter(|(col, _)| col.starts_with("lifetime:"))
                .filter_map(|(_, cells)| cells.last())
                .filter_map(|cell| cell.value.as_f64())
                .map(|hours| (class_id.to_string(), hours))
                .collect()
        },
        |_, hours| {
            let samples = hours.len();
            let sum: f64 = hours.iter().sum();
            let max = hours.iter().cloned().fold(0.0f64, f64::max);
            ClassLifetimeSummary {
                samples,
                mean_hours: if samples == 0 {
                    0.0
                } else {
                    sum / samples as f64
                },
                max_hours: max,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Timestamp;
    use scalia_types::ids::DatacenterId;
    use serde_json::json;

    #[test]
    fn generic_map_reduce_counts_columns() {
        let node = NoSqlNode::new(DatacenterId::new(0));
        node.put("a", "x", json!(1), Timestamp::new(1, 0));
        node.put("a", "y", json!(1), Timestamp::new(1, 1));
        node.put("b", "x", json!(1), Timestamp::new(1, 2));
        let result = map_reduce(
            &node,
            |key, row| vec![(key.to_string(), row.len())],
            |_, counts| counts.into_iter().sum::<usize>(),
        );
        assert_eq!(result["a"], 2);
        assert_eq!(result["b"], 1);
    }

    #[test]
    fn map_can_emit_multiple_keys_per_row() {
        let node = NoSqlNode::new(DatacenterId::new(0));
        node.put("row", "c1", json!(10), Timestamp::new(1, 0));
        node.put("row", "c2", json!(20), Timestamp::new(1, 1));
        let result = map_reduce(
            &node,
            |_, row| {
                row.iter()
                    .map(|(col, cells)| {
                        (col.clone(), cells.last().unwrap().value.as_i64().unwrap())
                    })
                    .collect::<Vec<_>>()
            },
            |_, values| values.into_iter().sum::<i64>(),
        );
        assert_eq!(result["c1"], 10);
        assert_eq!(result["c2"], 20);
    }

    #[test]
    fn class_lifetime_job_summarises_per_class() {
        let node = NoSqlNode::new(DatacenterId::new(0));
        // Class A: lifetimes 2h, 4h. Class B: lifetime 6h.
        node.put(
            "stats:class:A",
            "lifetime:1:0",
            json!(2.0),
            Timestamp::new(1, 0),
        );
        node.put(
            "stats:class:A",
            "lifetime:2:0",
            json!(4.0),
            Timestamp::new(2, 0),
        );
        node.put(
            "stats:class:B",
            "lifetime:3:0",
            json!(6.0),
            Timestamp::new(3, 0),
        );
        // A non-class row is ignored.
        node.put(
            "stats:obj:xyz",
            "period:000000000001",
            json!({}),
            Timestamp::new(4, 0),
        );

        let summaries = class_lifetime_summaries(&node);
        assert_eq!(summaries.len(), 2);
        let a = &summaries["A"];
        assert_eq!(a.samples, 2);
        assert!((a.mean_hours - 3.0).abs() < 1e-12);
        assert!((a.max_hours - 4.0).abs() < 1e-12);
        let b = &summaries["B"];
        assert_eq!(b.samples, 1);
        assert!((b.mean_hours - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_node_yields_empty_result() {
        let node = NoSqlNode::new(DatacenterId::new(0));
        let result: BTreeMap<String, usize> = map_reduce(
            &node,
            |key, _| vec![(key.to_string(), 1usize)],
            |_, v| v.len(),
        );
        assert!(result.is_empty());
        assert!(class_lifetime_summaries(&node).is_empty());
    }
}
