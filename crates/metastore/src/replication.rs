//! Multi-datacenter replication.
//!
//! The paper's database layer replicates every row in all datacenters so
//! that read requests can always be served locally and write requests
//! succeed "as long as a single database node is up and running", with the
//! datacenters becoming eventually consistent after a partition heals
//! (§III-D3). [`ReplicatedStore`] implements that behaviour over a set of
//! [`NoSqlNode`]s: writes go to every reachable node, misses are recorded as
//! hinted handoffs, and [`ReplicatedStore::anti_entropy`] reconciles nodes
//! pairwise by merging version sets.

use crate::model::{Cell, Timestamp};
use crate::store::NoSqlNode;
use parking_lot::Mutex;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::DatacenterId;
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::Arc;

/// A pending write that could not reach a node (hinted handoff).
#[derive(Debug, Clone)]
struct Hint {
    datacenter: DatacenterId,
    row_key: String,
    column: String,
    cell: Cell,
}

/// A store replicated across every datacenter's database node.
pub struct ReplicatedStore {
    nodes: Vec<Arc<NoSqlNode>>,
    hints: Mutex<VecDeque<Hint>>,
}

impl ReplicatedStore {
    /// Creates a replicated store over the given nodes (one per datacenter).
    pub fn new(nodes: Vec<Arc<NoSqlNode>>) -> Self {
        ReplicatedStore {
            nodes,
            hints: Mutex::new(VecDeque::new()),
        }
    }

    /// Creates a store with `datacenters` fresh nodes.
    pub fn with_datacenters(datacenters: u32) -> Self {
        let nodes = (0..datacenters)
            .map(|i| NoSqlNode::shared(DatacenterId::new(i)))
            .collect();
        Self::new(nodes)
    }

    /// The underlying nodes.
    pub fn nodes(&self) -> &[Arc<NoSqlNode>] {
        &self.nodes
    }

    /// The node of a specific datacenter, if it exists.
    pub fn node(&self, datacenter: DatacenterId) -> Option<&Arc<NoSqlNode>> {
        self.nodes.iter().find(|n| n.datacenter() == datacenter)
    }

    /// Number of queued hinted-handoff writes.
    pub fn pending_hints(&self) -> usize {
        self.hints.lock().len()
    }

    /// Writes a cell to every reachable node. Nodes that are down get a
    /// hinted handoff replayed by [`Self::anti_entropy`]. Fails only if *no*
    /// node accepted the write.
    pub fn put(
        &self,
        row_key: &str,
        column: &str,
        value: Value,
        timestamp: Timestamp,
    ) -> Result<()> {
        let cell = Cell::new(value, timestamp);
        let mut accepted = 0;
        for node in &self.nodes {
            if node.put(row_key, column, cell.value.clone(), cell.timestamp) {
                accepted += 1;
            } else {
                self.hints.lock().push_back(Hint {
                    datacenter: node.datacenter(),
                    row_key: row_key.to_string(),
                    column: column.to_string(),
                    cell: cell.clone(),
                });
            }
        }
        if accepted == 0 {
            Err(ScaliaError::DatacenterUnavailable(
                self.nodes.first().map(|n| n.datacenter().0).unwrap_or(0),
            ))
        } else {
            Ok(())
        }
    }

    /// The first reachable node, preferring the caller's local datacenter —
    /// the single read policy every best-effort single-replica read
    /// delegates to. Allocation-free: this sits under the hottest metadata
    /// reads.
    pub fn read_node(&self, local: DatacenterId) -> Option<&Arc<NoSqlNode>> {
        self.nodes
            .iter()
            .find(|n| n.is_up() && n.datacenter() == local)
            .or_else(|| self.nodes.iter().find(|n| n.is_up()))
    }

    /// Reads the latest version of a column from the first reachable node
    /// (preferring the caller's local datacenter).
    pub fn get_latest(&self, local: DatacenterId, row_key: &str, column: &str) -> Option<Cell> {
        self.read_node(local)
            .and_then(|n| n.get_latest(row_key, column))
    }

    /// Applies `read` to the latest version of a column on the first
    /// reachable node (preferring `local`) without cloning the cell — see
    /// [`NoSqlNode::with_latest`].
    pub fn with_latest<T>(
        &self,
        local: DatacenterId,
        row_key: &str,
        column: &str,
        read: impl FnOnce(&Cell) -> T,
    ) -> Option<T> {
        self.read_node(local)
            .and_then(|n| n.with_latest(row_key, column, read))
    }

    /// Reads every version of a column from the first reachable node.
    pub fn get_versions(&self, local: DatacenterId, row_key: &str, column: &str) -> Vec<Cell> {
        for node in self.ordered_nodes(local) {
            if node.is_up() {
                return node.get_versions(row_key, column);
            }
        }
        Vec::new()
    }

    /// Deletes a row on every reachable node.
    pub fn delete_row(&self, row_key: &str) {
        for node in &self.nodes {
            node.delete_row(row_key);
        }
    }

    /// Deletes a single column of a row on every reachable node (statistics
    /// garbage collection: dropping over-retention samples).
    pub fn delete_column(&self, row_key: &str, column: &str) {
        for node in &self.nodes {
            node.delete_column(row_key, column);
        }
    }

    /// Prunes deprecated versions of a column on every reachable node and
    /// returns the union of removed cells (deduplicated by timestamp).
    pub fn prune_old_versions(&self, row_key: &str, column: &str) -> Vec<Cell> {
        let mut removed: Vec<Cell> = Vec::new();
        for node in &self.nodes {
            for cell in node.prune_old_versions(row_key, column) {
                if !removed.iter().any(|c| c.timestamp == cell.timestamp) {
                    removed.push(cell);
                }
            }
        }
        removed.sort_by_key(|c| c.timestamp);
        removed
    }

    /// Row keys modified since `since` on any reachable node (deduplicated).
    pub fn modified_since(&self, since: Timestamp) -> Vec<String> {
        let mut keys: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.modified_since(since))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Replays hinted handoffs to recovered nodes and merges every row of
    /// every reachable node into every other reachable node, making the
    /// datacenters eventually consistent.
    pub fn anti_entropy(&self) {
        // Replay hints to nodes that are back up.
        let mut hints = self.hints.lock();
        let mut remaining = VecDeque::new();
        while let Some(hint) = hints.pop_front() {
            let delivered = self
                .node(hint.datacenter)
                .map(|node| {
                    node.put(
                        &hint.row_key,
                        &hint.column,
                        hint.cell.value.clone(),
                        hint.cell.timestamp,
                    )
                })
                .unwrap_or(false);
            if !delivered {
                remaining.push_back(hint);
            }
        }
        *hints = remaining;
        drop(hints);

        // Pairwise merge of reachable nodes.
        let snapshots: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.is_up())
            .map(|n| (n.clone(), n.snapshot()))
            .collect();
        for (_, snapshot) in &snapshots {
            for (row_key, row) in snapshot {
                for (column, cells) in row {
                    for cell in cells {
                        for (target, _) in &snapshots {
                            target.put(row_key, column, cell.value.clone(), cell.timestamp);
                        }
                    }
                }
            }
        }
    }

    fn ordered_nodes(&self, local: DatacenterId) -> Vec<Arc<NoSqlNode>> {
        let mut ordered: Vec<Arc<NoSqlNode>> = self.nodes.clone();
        ordered.sort_by_key(|n| if n.datacenter() == local { 0 } else { 1 });
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn store() -> ReplicatedStore {
        ReplicatedStore::with_datacenters(2)
    }

    #[test]
    fn writes_replicate_to_all_datacenters() {
        let s = store();
        s.put("r", "c", json!("v"), Timestamp::new(1, 0)).unwrap();
        for node in s.nodes() {
            assert_eq!(node.get_latest("r", "c").unwrap().value, json!("v"));
        }
        assert_eq!(s.pending_hints(), 0);
    }

    #[test]
    fn reads_prefer_local_datacenter_but_fail_over() {
        let s = store();
        s.put("r", "c", json!(1), Timestamp::new(1, 0)).unwrap();
        // Take dc_0 down; a dc_0-local read must still succeed via dc_1.
        s.nodes()[0].set_up(false);
        let cell = s.get_latest(DatacenterId::new(0), "r", "c").unwrap();
        assert_eq!(cell.value, json!(1));
    }

    #[test]
    fn write_succeeds_while_one_node_is_down_then_heals() {
        let s = store();
        s.nodes()[1].set_up(false);
        s.put("r", "c", json!("during-outage"), Timestamp::new(5, 0))
            .unwrap();
        assert_eq!(s.pending_hints(), 1);
        // The down node has nothing yet.
        s.nodes()[1].set_up(true);
        assert!(s.nodes()[1].get_latest("r", "c").is_none());
        // Anti-entropy replays the hint.
        s.anti_entropy();
        assert_eq!(s.pending_hints(), 0);
        assert_eq!(
            s.nodes()[1].get_latest("r", "c").unwrap().value,
            json!("during-outage")
        );
    }

    #[test]
    fn write_fails_only_when_all_nodes_down() {
        let s = store();
        s.nodes()[0].set_up(false);
        s.nodes()[1].set_up(false);
        let err = s.put("r", "c", json!(1), Timestamp::new(1, 0)).unwrap_err();
        assert!(matches!(err, ScaliaError::DatacenterUnavailable(_)));
    }

    #[test]
    fn anti_entropy_merges_divergent_nodes() {
        let s = store();
        // Simulate a partition: each datacenter gets a different concurrent
        // write applied only locally.
        s.nodes()[0].put("r", "c", json!("a"), Timestamp::new(10, 0));
        s.nodes()[1].put("r", "c", json!("b"), Timestamp::new(10, 1));
        s.anti_entropy();
        for node in s.nodes() {
            let versions = node.get_versions("r", "c");
            assert_eq!(versions.len(), 2, "both versions present after merge");
            assert_eq!(node.get_latest("r", "c").unwrap().value, json!("b"));
        }
    }

    #[test]
    fn prune_old_versions_across_datacenters() {
        let s = store();
        s.put("r", "c", json!("old"), Timestamp::new(1, 0)).unwrap();
        s.put("r", "c", json!("new"), Timestamp::new(2, 0)).unwrap();
        let removed = s.prune_old_versions("r", "c");
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].value, json!("old"));
        for node in s.nodes() {
            assert_eq!(node.get_versions("r", "c").len(), 1);
        }
    }

    #[test]
    fn modified_since_union() {
        let s = store();
        s.put("a", "c", json!(1), Timestamp::new(10, 0)).unwrap();
        // A write that only reached dc_1 (dc_0 down).
        s.nodes()[0].set_up(false);
        s.put("b", "c", json!(1), Timestamp::new(20, 0)).unwrap();
        s.nodes()[0].set_up(true);
        let keys = s.modified_since(Timestamp::new(0, 0));
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn delete_row_everywhere() {
        let s = store();
        s.put("r", "c", json!(1), Timestamp::new(1, 0)).unwrap();
        s.delete_row("r");
        for node in s.nodes() {
            assert!(node.get_latest("r", "c").is_none());
        }
    }
}
