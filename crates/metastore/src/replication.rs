//! Multi-datacenter replication.
//!
//! The paper's database layer replicates every row in all datacenters so
//! that read requests can always be served locally and write requests
//! succeed "as long as a single database node is up and running", with the
//! datacenters becoming eventually consistent after a partition heals
//! (§III-D3). [`ReplicatedStore`] implements that behaviour over a set of
//! [`NoSqlNode`]s: writes go to every reachable node, misses are recorded as
//! hinted handoffs, and [`ReplicatedStore::anti_entropy`] reconciles nodes
//! pairwise by merging version sets.
//!
//! Every mutation is additionally recorded in a [`WriteAheadJournal`] so the
//! store survives a crash: [`ReplicatedStore::checkpoint`] snapshots the
//! nodes and truncates the journal's committed prefix, and
//! [`ReplicatedStore::recover`] rebuilds the nodes from a checkpoint plus a
//! journal replay. Multi-operation commits go through
//! [`ReplicatedStore::transaction`], whose write-ahead `Begin` record makes
//! the whole batch atomic across a crash (see [`crate::journal`]).

use crate::journal::{JournalOp, JournalRecord, StoreCheckpoint, WriteAheadJournal};
use crate::model::{Cell, Timestamp};
use crate::store::NoSqlNode;
use parking_lot::Mutex;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::DatacenterId;
use serde_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A pending write that could not reach a node (hinted handoff).
#[derive(Debug, Clone)]
struct Hint {
    datacenter: DatacenterId,
    row_key: String,
    column: String,
    cell: Cell,
}

/// A crash-injection hook: called with a crash-point label, returns `true`
/// when the operation must abort *right there* with no cleanup (the chaos
/// harness arms these through a fault plan).
pub type CrashHook = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// A store replicated across every datacenter's database node.
pub struct ReplicatedStore {
    nodes: Vec<Arc<NoSqlNode>>,
    hints: Mutex<VecDeque<Hint>>,
    journal: WriteAheadJournal,
    crash_hook: Mutex<Option<CrashHook>>,
}

impl ReplicatedStore {
    /// Creates a replicated store over the given nodes (one per datacenter).
    pub fn new(nodes: Vec<Arc<NoSqlNode>>) -> Self {
        ReplicatedStore {
            nodes,
            hints: Mutex::new(VecDeque::new()),
            journal: WriteAheadJournal::new(),
            crash_hook: Mutex::new(None),
        }
    }

    /// Creates a store with `datacenters` fresh nodes.
    pub fn with_datacenters(datacenters: u32) -> Self {
        let nodes = (0..datacenters)
            .map(|i| NoSqlNode::shared(DatacenterId::new(i)))
            .collect();
        Self::new(nodes)
    }

    /// The underlying nodes.
    pub fn nodes(&self) -> &[Arc<NoSqlNode>] {
        &self.nodes
    }

    /// The node of a specific datacenter, if it exists.
    pub fn node(&self, datacenter: DatacenterId) -> Option<&Arc<NoSqlNode>> {
        self.nodes.iter().find(|n| n.datacenter() == datacenter)
    }

    /// Number of queued hinted-handoff writes.
    pub fn pending_hints(&self) -> usize {
        self.hints.lock().len()
    }

    /// Writes a cell to every reachable node. Nodes that are down get a
    /// hinted handoff replayed by [`Self::anti_entropy`]. Fails only if *no*
    /// node accepted the write. Accepted writes are recorded in the
    /// write-ahead journal (as auto-committed redo records) so crash
    /// recovery can replay them.
    pub fn put(
        &self,
        row_key: &str,
        column: &str,
        value: Value,
        timestamp: Timestamp,
    ) -> Result<()> {
        let op = JournalOp::Put {
            row_key: row_key.to_string(),
            column: column.to_string(),
            value: value.clone(),
            timestamp,
        };
        self.apply_put(row_key, column, value, timestamp)?;
        self.journal.log_apply(op);
        Ok(())
    }

    /// Applies a cell write to the nodes (hinting the down ones) without
    /// touching the journal — shared by the journaling front doors and the
    /// recovery replay.
    fn apply_put(
        &self,
        row_key: &str,
        column: &str,
        value: Value,
        timestamp: Timestamp,
    ) -> Result<()> {
        let cell = Cell::new(value, timestamp);
        let mut accepted = 0;
        for node in &self.nodes {
            if node.put(row_key, column, cell.value.clone(), cell.timestamp) {
                accepted += 1;
            } else {
                self.hints.lock().push_back(Hint {
                    datacenter: node.datacenter(),
                    row_key: row_key.to_string(),
                    column: column.to_string(),
                    cell: cell.clone(),
                });
            }
        }
        if accepted == 0 {
            Err(ScaliaError::DatacenterUnavailable(
                self.nodes.first().map(|n| n.datacenter().0).unwrap_or(0),
            ))
        } else {
            Ok(())
        }
    }

    /// Applies one journal op to the nodes (no journaling). Returns the
    /// cells a `Prune` removed (union across nodes, deduplicated), empty for
    /// the other op kinds.
    fn apply_op(&self, op: &JournalOp) -> Result<Vec<Cell>> {
        match op {
            JournalOp::Put {
                row_key,
                column,
                value,
                timestamp,
            } => self
                .apply_put(row_key, column, value.clone(), *timestamp)
                .map(|()| Vec::new()),
            JournalOp::DeleteRow { row_key } => {
                for node in &self.nodes {
                    node.delete_row(row_key);
                }
                Ok(Vec::new())
            }
            JournalOp::DeleteColumn { row_key, column } => {
                for node in &self.nodes {
                    node.delete_column(row_key, column);
                }
                Ok(Vec::new())
            }
            JournalOp::Prune { row_key, column } => {
                let mut removed: Vec<Cell> = Vec::new();
                for node in &self.nodes {
                    for cell in node.prune_old_versions(row_key, column) {
                        if !removed.iter().any(|c| c.timestamp == cell.timestamp) {
                            removed.push(cell);
                        }
                    }
                }
                removed.sort_by_key(|c| c.timestamp);
                Ok(removed)
            }
        }
    }

    /// Atomically applies a batch of operations under write-ahead logging:
    /// the whole op list is journaled as one `Begin` record before any node
    /// sees any of it, and a `Commit` record lands only after every op
    /// applied. A crash anywhere in between leaves a `Begin` without a
    /// `Commit`, which [`Self::recover`] redoes — so the batch is all-or-
    /// nothing across a crash (old state if the crash beat the `Begin`
    /// record, new state otherwise).
    ///
    /// Returns the union of cells removed by the batch's `Prune` ops
    /// (deduplicated by timestamp, sorted) — the engine deletes their
    /// chunks.
    ///
    /// Crash points visited (in order): `txn::before-log`, `txn::logged`,
    /// `txn::torn` (after the first op applied), `txn::applied`.
    pub fn transaction(&self, ops: Vec<JournalOp>) -> Result<Vec<Cell>> {
        self.crash_check("txn::before-log")?;
        let txid = self.journal.begin(ops.clone());
        self.crash_check("txn::logged")?;
        let mut removed: Vec<Cell> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            for cell in self.apply_op(op)? {
                if !removed.iter().any(|c| c.timestamp == cell.timestamp) {
                    removed.push(cell);
                }
            }
            if i == 0 {
                self.crash_check("txn::torn")?;
            }
        }
        self.crash_check("txn::applied")?;
        self.journal.commit(txid);
        removed.sort_by_key(|c| c.timestamp);
        Ok(removed)
    }

    /// Installs a crash-injection hook (see [`CrashHook`]). The chaos
    /// harness uses this to abort journaled operations at named points.
    pub fn set_crash_hook(&self, hook: Option<CrashHook>) {
        *self.crash_hook.lock() = hook;
    }

    /// Visits a crash point: aborts with an internal error when the
    /// installed hook says the label is armed.
    fn crash_check(&self, label: &str) -> Result<()> {
        let hook = self.crash_hook.lock().clone();
        match hook {
            Some(hook) if hook(label) => {
                Err(ScaliaError::Internal(format!("crash injected at {label}")))
            }
            _ => Ok(()),
        }
    }

    /// The store's write-ahead journal.
    pub fn journal(&self) -> &WriteAheadJournal {
        &self.journal
    }

    /// Snapshots every node's rows and truncates the journal's committed
    /// prefix — the durable baseline [`Self::recover`] restores from. Take
    /// checkpoints at quiescent points (no in-flight transactions).
    pub fn checkpoint(&self) -> StoreCheckpoint {
        let node_rows = self.nodes.iter().map(|n| n.snapshot()).collect();
        self.journal.truncate_committed();
        StoreCheckpoint { node_rows }
    }

    /// Crash recovery: restores every node from `checkpoint` (bringing it
    /// up), drops volatile hinted handoffs, and replays the journal in
    /// order. Committed transactions and auto-committed singles are redone
    /// as logged; a `Begin` without a `Commit` (a transaction interrupted by
    /// the crash) is **redone to completion** — its intent was durable — and
    /// then marked committed, so recovery is idempotent. After recovery the
    /// store holds either the pre-transaction or the post-transaction state
    /// for every interrupted commit, never a torn mixture.
    pub fn recover(&self, checkpoint: &StoreCheckpoint) {
        for (i, node) in self.nodes.iter().enumerate() {
            node.set_up(true);
            let rows = checkpoint.node_rows.get(i).cloned().unwrap_or_default();
            node.restore(rows);
        }
        self.hints.lock().clear();
        let uncommitted = self.journal.uncommitted();
        for record in self.journal.records() {
            match record {
                JournalRecord::Apply(op) => {
                    let _ = self.apply_op(&op);
                }
                JournalRecord::Begin { ops, .. } => {
                    for op in &ops {
                        let _ = self.apply_op(op);
                    }
                }
                JournalRecord::Commit { .. } => {}
            }
        }
        for txid in uncommitted {
            self.journal.commit(txid);
        }
    }

    /// The first reachable node, preferring the caller's local datacenter —
    /// the single read policy every best-effort single-replica read
    /// delegates to. Allocation-free: this sits under the hottest metadata
    /// reads.
    pub fn read_node(&self, local: DatacenterId) -> Option<&Arc<NoSqlNode>> {
        self.nodes
            .iter()
            .find(|n| n.is_up() && n.datacenter() == local)
            .or_else(|| self.nodes.iter().find(|n| n.is_up()))
    }

    /// Reads the latest version of a column from the first reachable node
    /// (preferring the caller's local datacenter).
    pub fn get_latest(&self, local: DatacenterId, row_key: &str, column: &str) -> Option<Cell> {
        self.read_node(local)
            .and_then(|n| n.get_latest(row_key, column))
    }

    /// Reads one row from **every** up replica and merges it: per column,
    /// the cell with the highest timestamp across all replicas wins (the
    /// same last-write-wins rule MVCC applies within a node).
    ///
    /// This is the replicated read for row-shaped queries (e.g. the
    /// container index behind LIST): [`Self::get_latest`] serves from a
    /// *single* node, which is correct only for the node anti-entropy has
    /// caught up — a replica that was down during writes and came back
    /// before its hints replayed would otherwise serve arbitrarily stale
    /// cells. Merging across replicas reads through that lag: any up node
    /// that accepted the write supplies the fresh cell.
    pub fn get_row_merged(&self, row_key: &str) -> BTreeMap<String, Cell> {
        let mut merged: BTreeMap<String, Cell> = BTreeMap::new();
        for node in self.nodes.iter().filter(|n| n.is_up()) {
            let Some(row) = node.get_row(row_key) else {
                continue;
            };
            for (column, cells) in row {
                let Some(cell) = cells.into_iter().max_by_key(|c| c.timestamp) else {
                    continue;
                };
                match merged.get(&column) {
                    Some(existing) if existing.timestamp >= cell.timestamp => {}
                    _ => {
                        merged.insert(column, cell);
                    }
                }
            }
        }
        merged
    }

    /// Applies `read` to the latest version of a column on the first
    /// reachable node (preferring `local`) without cloning the cell — see
    /// [`NoSqlNode::with_latest`].
    pub fn with_latest<T>(
        &self,
        local: DatacenterId,
        row_key: &str,
        column: &str,
        read: impl FnOnce(&Cell) -> T,
    ) -> Option<T> {
        self.read_node(local)
            .and_then(|n| n.with_latest(row_key, column, read))
    }

    /// Reads every version of a column from the first reachable node.
    pub fn get_versions(&self, local: DatacenterId, row_key: &str, column: &str) -> Vec<Cell> {
        for node in self.ordered_nodes(local) {
            if node.is_up() {
                return node.get_versions(row_key, column);
            }
        }
        Vec::new()
    }

    /// Deletes a row on every reachable node (journaled).
    pub fn delete_row(&self, row_key: &str) {
        for node in &self.nodes {
            node.delete_row(row_key);
        }
        self.journal.log_apply(JournalOp::DeleteRow {
            row_key: row_key.to_string(),
        });
    }

    /// Deletes a single column of a row on every reachable node (statistics
    /// garbage collection: dropping over-retention samples). Journaled.
    pub fn delete_column(&self, row_key: &str, column: &str) {
        for node in &self.nodes {
            node.delete_column(row_key, column);
        }
        self.journal.log_apply(JournalOp::DeleteColumn {
            row_key: row_key.to_string(),
            column: column.to_string(),
        });
    }

    /// Prunes deprecated versions of a column on every reachable node and
    /// returns the union of removed cells (deduplicated by timestamp).
    /// Journaled.
    pub fn prune_old_versions(&self, row_key: &str, column: &str) -> Vec<Cell> {
        let op = JournalOp::Prune {
            row_key: row_key.to_string(),
            column: column.to_string(),
        };
        let removed = self.apply_op(&op).unwrap_or_default();
        self.journal.log_apply(op);
        removed
    }

    /// Row keys modified since `since` on any reachable node (deduplicated).
    pub fn modified_since(&self, since: Timestamp) -> Vec<String> {
        let mut keys: Vec<String> = self
            .nodes
            .iter()
            .flat_map(|n| n.modified_since(since))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Replays hinted handoffs to recovered nodes and merges every row of
    /// every reachable node into every other reachable node, making the
    /// datacenters eventually consistent.
    pub fn anti_entropy(&self) {
        // Replay hints to nodes that are back up.
        let mut hints = self.hints.lock();
        let mut remaining = VecDeque::new();
        while let Some(hint) = hints.pop_front() {
            let delivered = self
                .node(hint.datacenter)
                .map(|node| {
                    node.put(
                        &hint.row_key,
                        &hint.column,
                        hint.cell.value.clone(),
                        hint.cell.timestamp,
                    )
                })
                .unwrap_or(false);
            if !delivered {
                remaining.push_back(hint);
            }
        }
        *hints = remaining;
        drop(hints);

        // Pairwise merge of reachable nodes.
        let snapshots: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| n.is_up())
            .map(|n| (n.clone(), n.snapshot()))
            .collect();
        for (_, snapshot) in &snapshots {
            for (row_key, row) in snapshot {
                for (column, cells) in row {
                    for cell in cells {
                        for (target, _) in &snapshots {
                            target.put(row_key, column, cell.value.clone(), cell.timestamp);
                        }
                    }
                }
            }
        }
    }

    fn ordered_nodes(&self, local: DatacenterId) -> Vec<Arc<NoSqlNode>> {
        let mut ordered: Vec<Arc<NoSqlNode>> = self.nodes.clone();
        ordered.sort_by_key(|n| if n.datacenter() == local { 0 } else { 1 });
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn store() -> ReplicatedStore {
        ReplicatedStore::with_datacenters(2)
    }

    #[test]
    fn writes_replicate_to_all_datacenters() {
        let s = store();
        s.put("r", "c", json!("v"), Timestamp::new(1, 0)).unwrap();
        for node in s.nodes() {
            assert_eq!(node.get_latest("r", "c").unwrap().value, json!("v"));
        }
        assert_eq!(s.pending_hints(), 0);
    }

    #[test]
    fn reads_prefer_local_datacenter_but_fail_over() {
        let s = store();
        s.put("r", "c", json!(1), Timestamp::new(1, 0)).unwrap();
        // Take dc_0 down; a dc_0-local read must still succeed via dc_1.
        s.nodes()[0].set_up(false);
        let cell = s.get_latest(DatacenterId::new(0), "r", "c").unwrap();
        assert_eq!(cell.value, json!(1));
    }

    #[test]
    fn write_succeeds_while_one_node_is_down_then_heals() {
        let s = store();
        s.nodes()[1].set_up(false);
        s.put("r", "c", json!("during-outage"), Timestamp::new(5, 0))
            .unwrap();
        assert_eq!(s.pending_hints(), 1);
        // The down node has nothing yet.
        s.nodes()[1].set_up(true);
        assert!(s.nodes()[1].get_latest("r", "c").is_none());
        // Anti-entropy replays the hint.
        s.anti_entropy();
        assert_eq!(s.pending_hints(), 0);
        assert_eq!(
            s.nodes()[1].get_latest("r", "c").unwrap().value,
            json!("during-outage")
        );
    }

    #[test]
    fn write_fails_only_when_all_nodes_down() {
        let s = store();
        s.nodes()[0].set_up(false);
        s.nodes()[1].set_up(false);
        let err = s.put("r", "c", json!(1), Timestamp::new(1, 0)).unwrap_err();
        assert!(matches!(err, ScaliaError::DatacenterUnavailable(_)));
    }

    #[test]
    fn anti_entropy_merges_divergent_nodes() {
        let s = store();
        // Simulate a partition: each datacenter gets a different concurrent
        // write applied only locally.
        s.nodes()[0].put("r", "c", json!("a"), Timestamp::new(10, 0));
        s.nodes()[1].put("r", "c", json!("b"), Timestamp::new(10, 1));
        s.anti_entropy();
        for node in s.nodes() {
            let versions = node.get_versions("r", "c");
            assert_eq!(versions.len(), 2, "both versions present after merge");
            assert_eq!(node.get_latest("r", "c").unwrap().value, json!("b"));
        }
    }

    #[test]
    fn prune_old_versions_across_datacenters() {
        let s = store();
        s.put("r", "c", json!("old"), Timestamp::new(1, 0)).unwrap();
        s.put("r", "c", json!("new"), Timestamp::new(2, 0)).unwrap();
        let removed = s.prune_old_versions("r", "c");
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].value, json!("old"));
        for node in s.nodes() {
            assert_eq!(node.get_versions("r", "c").len(), 1);
        }
    }

    #[test]
    fn modified_since_union() {
        let s = store();
        s.put("a", "c", json!(1), Timestamp::new(10, 0)).unwrap();
        // A write that only reached dc_1 (dc_0 down).
        s.nodes()[0].set_up(false);
        s.put("b", "c", json!(1), Timestamp::new(20, 0)).unwrap();
        s.nodes()[0].set_up(true);
        let keys = s.modified_since(Timestamp::new(0, 0));
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn delete_row_everywhere() {
        let s = store();
        s.put("r", "c", json!(1), Timestamp::new(1, 0)).unwrap();
        s.delete_row("r");
        for node in s.nodes() {
            assert!(node.get_latest("r", "c").is_none());
        }
    }

    #[test]
    fn transaction_applies_all_ops_and_returns_pruned_cells() {
        let s = store();
        s.put("r", "meta", json!("old"), Timestamp::new(1, 0))
            .unwrap();
        let removed = s
            .transaction(vec![
                JournalOp::Put {
                    row_key: "r".into(),
                    column: "meta".into(),
                    value: json!("new"),
                    timestamp: Timestamp::new(2, 0),
                },
                JournalOp::Put {
                    row_key: "container:c".into(),
                    column: "k".into(),
                    value: json!(true),
                    timestamp: Timestamp::new(2, 0),
                },
                JournalOp::Prune {
                    row_key: "r".into(),
                    column: "meta".into(),
                },
            ])
            .unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].value, json!("old"));
        for node in s.nodes() {
            assert_eq!(node.get_versions("r", "meta").len(), 1);
            assert_eq!(node.get_latest("r", "meta").unwrap().value, json!("new"));
            assert!(node.get_latest("container:c", "k").is_some());
        }
        assert!(s.journal().uncommitted().is_empty());
    }

    #[test]
    fn recovery_replays_journal_onto_checkpoint() {
        let s = store();
        s.put("a", "c", json!(1), Timestamp::new(1, 0)).unwrap();
        let cp = s.checkpoint();
        // Post-checkpoint history: a put, a delete, a committed transaction.
        s.put("b", "c", json!(2), Timestamp::new(2, 0)).unwrap();
        s.delete_row("a");
        s.transaction(vec![JournalOp::Put {
            row_key: "t".into(),
            column: "c".into(),
            value: json!(3),
            timestamp: Timestamp::new(3, 0),
        }])
        .unwrap();
        // Crash: wipe the nodes entirely, then recover.
        for node in s.nodes() {
            node.restore(Vec::new());
        }
        s.recover(&cp);
        for node in s.nodes() {
            assert!(node.get_latest("a", "c").is_none(), "delete replayed");
            assert_eq!(node.get_latest("b", "c").unwrap().value, json!(2));
            assert_eq!(node.get_latest("t", "c").unwrap().value, json!(3));
        }
    }

    #[test]
    fn crash_mid_transaction_recovers_to_new_state_atomically() {
        for label in ["txn::logged", "txn::torn", "txn::applied"] {
            let s = store();
            s.put("r", "meta", json!("old"), Timestamp::new(1, 0))
                .unwrap();
            let cp = s.checkpoint();
            let fire = label.to_string();
            s.set_crash_hook(Some(Arc::new(move |l: &str| l == fire)));
            let err = s
                .transaction(vec![
                    JournalOp::Put {
                        row_key: "r".into(),
                        column: "meta".into(),
                        value: json!("new"),
                        timestamp: Timestamp::new(2, 0),
                    },
                    JournalOp::Prune {
                        row_key: "r".into(),
                        column: "meta".into(),
                    },
                ])
                .unwrap_err();
            assert!(matches!(err, ScaliaError::Internal(_)), "{label}");
            s.set_crash_hook(None);
            s.recover(&cp);
            // The Begin record was durable, so recovery redoes the whole
            // batch: exactly one version, the new one, on every node.
            for node in s.nodes() {
                assert_eq!(node.get_versions("r", "meta").len(), 1, "{label}");
                assert_eq!(
                    node.get_latest("r", "meta").unwrap().value,
                    json!("new"),
                    "{label}"
                );
            }
            assert!(s.journal().uncommitted().is_empty(), "{label}");
            // Recovery is idempotent.
            s.recover(&cp);
            for node in s.nodes() {
                assert_eq!(node.get_versions("r", "meta").len(), 1, "{label}");
            }
        }
    }

    #[test]
    fn crash_before_log_leaves_old_state() {
        let s = store();
        s.put("r", "meta", json!("old"), Timestamp::new(1, 0))
            .unwrap();
        let cp = s.checkpoint();
        s.set_crash_hook(Some(Arc::new(|l: &str| l == "txn::before-log")));
        assert!(s
            .transaction(vec![JournalOp::Put {
                row_key: "r".into(),
                column: "meta".into(),
                value: json!("new"),
                timestamp: Timestamp::new(2, 0),
            }])
            .is_err());
        s.set_crash_hook(None);
        s.recover(&cp);
        for node in s.nodes() {
            assert_eq!(node.get_latest("r", "meta").unwrap().value, json!("old"));
            assert_eq!(node.get_versions("r", "meta").len(), 1);
        }
    }

    #[test]
    fn checkpoint_truncates_committed_journal_prefix() {
        let s = store();
        for i in 0..10 {
            s.put("r", "c", json!(i), Timestamp::new(i, 0)).unwrap();
        }
        assert_eq!(s.journal().len(), 10);
        let cp = s.checkpoint();
        assert_eq!(s.journal().len(), 0, "committed prefix dropped");
        // Recovery from a fresh checkpoint with an empty journal is exact.
        s.recover(&cp);
        assert_eq!(
            s.get_latest(DatacenterId::new(0), "r", "c").unwrap().value,
            json!(9)
        );
    }
}
