//! # scalia-engine
//!
//! The Scalia brokerage system (§III of the paper): the layer a client
//! actually talks to.
//!
//! A deployment ([`cluster::ScaliaCluster`]) consists of one or more
//! *datacenters*, each hosting a set of stateless *engines*, a shared
//! *cache* and a *database node*. Engines expose an S3-like
//! put/get/delete/list API; on a write they choose the best provider set for
//! the object (via `scalia-core`), erasure-code the data and store one chunk
//! per provider; on a read they reassemble the object from the `m` cheapest
//! reachable providers (or serve it straight from the cache). Access
//! statistics flow through per-engine log agents into the statistics tables,
//! and a periodic optimisation procedure — led by an elected engine —
//! re-places only the objects whose access pattern changed.
//!
//! Modules:
//!
//! * [`infra`] — the shared infrastructure handle: provider catalog and
//!   backends, replicated metadata DB, statistics store, simulation clock,
//!   pending-delete queue.
//! * [`cache`] — the per-datacenter LRU cache with cross-datacenter
//!   invalidation.
//! * [`engine`] — the stateless engine: write / read / delete life-cycles
//!   (§III-D), including MVCC conflict cleanup and provider-failure
//!   handling.
//! * [`chunk_io`] — the unified parallel chunk-I/O layer: parallel uploads
//!   with abort-on-first-hard-failure and rollback, parallel deletes, and
//!   hedged first-`m`-of-`n` reads that promote parity providers past
//!   errors and stragglers.
//! * [`placement_cache`] — deployment-wide memo of placement decisions
//!   (keyed by rule + usage class + catalog version) so the write path,
//!   the optimiser and repair stop recomputing identical searches.
//! * [`optimizer`] — leader election, sharding of the recently-accessed
//!   object set across engines, trend detection and migration execution
//!   (§III-A3).
//! * [`streaming`] — the staged stripe pipeline: streaming writes that
//!   encode stripe `k + 1` while stripe `k`'s chunks are in flight, the
//!   multipart/append API (`begin_put` / `put_part` / `complete_put`) with
//!   a single-transaction commit of the assembled stripe map, and range
//!   reads that fetch only the covering stripes.
//! * [`repair`] — active repair of chunks lost to a provider outage
//!   (§IV-E).
//! * [`cluster`] — the multi-datacenter deployment facade and its builder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chunk_io;
pub mod cluster;
pub mod engine;
pub mod gc;
pub mod infra;
pub mod optimizer;
pub mod placement_cache;
pub mod repair;
pub mod streaming;

pub use cache::Cache;
pub use cluster::{ScaliaCluster, ScaliaClusterBuilder};
pub use engine::Engine;
pub use infra::Infrastructure;
pub use optimizer::{OptimizationReport, PeriodicOptimizer};
pub use placement_cache::{PlacementCache, PlacementCacheStats};
pub use streaming::MultipartUpload;

/// Commonly used items.
pub mod prelude {
    pub use crate::cache::Cache;
    pub use crate::cluster::{ScaliaCluster, ScaliaClusterBuilder};
    pub use crate::engine::Engine;
    pub use crate::infra::Infrastructure;
    pub use crate::optimizer::{OptimizationReport, PeriodicOptimizer};
    pub use crate::streaming::MultipartUpload;
}
