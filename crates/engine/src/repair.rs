//! Active repair after a provider failure (§IV-E).
//!
//! When a provider suffers a transient outage, Scalia may either wait for it
//! to recover or *actively repair*: move the chunks that lived on the faulty
//! provider to another provider, reconstructing them from the surviving
//! chunks. Repair changes the placement, so the threshold of the most
//! cost-effective set may change too — in that case every chunk is
//! re-written; otherwise only the missing chunk is.
//!
//! Repair migrations run through [`Engine::replace_placement`], so their
//! chunk reads and writes use the same parallel chunk-I/O layer
//! ([`crate::chunk_io`]) as the client data path: reconstruction reads are
//! hedged across the surviving providers and the re-written chunks fan out
//! in parallel with rollback on failure.

use crate::engine::Engine;
use crate::infra::Infrastructure;
use scalia_core::cost::PredictedUsage;
use scalia_core::placement::PlacementEngine;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::object::ObjectMeta;
use std::sync::Arc;

/// How to react to a provider outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Do nothing and wait for the provider to recover.
    Wait,
    /// Reconstruct the affected chunks and move them to other providers.
    ActiveRepair,
}

/// Outcome of a repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Objects that had a chunk on the failed provider.
    pub objects_affected: usize,
    /// Objects successfully moved to a new provider set.
    pub objects_repaired: usize,
    /// Objects that could not be repaired (e.g. no feasible placement).
    pub objects_failed: usize,
}

/// Scans the metadata for objects with a chunk on `failed_provider` and, for
/// each, recomputes the best placement over the remaining providers and
/// migrates to it.
///
/// The provider should already be marked unavailable in the catalog (so the
/// placement search cannot pick it again); this function does not change the
/// catalog state.
pub fn repair_provider(
    engine: &Arc<Engine>,
    infra: &Arc<Infrastructure>,
    failed_provider: ProviderId,
    placement_engine: &PlacementEngine,
) -> Result<RepairReport> {
    let mut report = RepairReport::default();

    // Find every object whose striping references the failed provider.
    let node = infra
        .database()
        .nodes()
        .iter()
        .find(|n| n.is_up())
        .cloned()
        .ok_or(ScaliaError::DatacenterUnavailable(0))?;

    let affected: Vec<ObjectMeta> = node
        .snapshot()
        .into_iter()
        .filter_map(|(_, row)| {
            row.get("meta")
                .and_then(|cells| cells.last())
                .and_then(|cell| serde_json::from_value::<ObjectMeta>(cell.value.clone()).ok())
        })
        .filter(|meta| {
            meta.striping
                .chunks
                .iter()
                .any(|c| c.provider == failed_provider)
        })
        .collect();

    report.objects_affected = affected.len();

    let period_hours = infra.sampling_period().as_hours();
    for meta in affected {
        let history = infra.statistics(engine.datacenter()).history(
            &meta.key.row_key(),
            scalia_types::stats::DEFAULT_HISTORY_LEN,
        );
        let periods = 24.max(history.len());
        let usage = PredictedUsage::from_history(meta.size, &history, periods, period_hours);
        // Cached: objects of the same class sharing the failed provider are
        // re-placed with one search (the outage bumped the catalog version,
        // so no pre-outage decision can leak through).
        let class = scalia_core::classify::ObjectClass::of(&meta.mime, meta.size);
        match infra.best_placement_cached(placement_engine, &meta.rule, class.id(), &usage) {
            Ok(decision) => match engine.replace_placement(&meta.key, &decision.placement) {
                Ok(_) => report.objects_repaired += 1,
                Err(_) => report.objects_failed += 1,
            },
            Err(_) => report.objects_failed += 1,
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ScaliaCluster;
    use scalia_types::object::ObjectKey;
    use scalia_types::reliability::Reliability;
    use scalia_types::rules::StorageRule;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "repair",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            0.5,
        )
    }

    #[test]
    fn active_repair_moves_chunks_off_the_failed_provider() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();

        // Store several objects.
        let keys: Vec<ObjectKey> = (0..4)
            .map(|i| ObjectKey::new("backups", format!("obj{i}.tar")))
            .collect();
        for key in &keys {
            cluster
                .put(key, vec![6u8; 500_000], "application/x-tar", rule(), None)
                .unwrap();
        }

        // Fail a provider that actually holds chunks.
        let victim = {
            let meta = engine.read_metadata(&keys[0]).unwrap();
            meta.striping.chunks[0].provider
        };
        infra.set_provider_down(victim, true);

        let report = repair_provider(&engine, &infra, victim, &PlacementEngine::new()).unwrap();
        assert!(report.objects_affected >= 1);
        assert_eq!(report.objects_failed, 0);
        assert_eq!(report.objects_repaired, report.objects_affected);

        // No object references the failed provider any more, and every
        // object is still readable while the provider stays down.
        cluster.caches().iter().for_each(|c| c.clear());
        for key in &keys {
            let meta = engine.read_metadata(key).unwrap();
            assert!(meta.striping.chunks.iter().all(|c| c.provider != victim));
            assert_eq!(cluster.get(key).unwrap().len(), 500_000);
        }
    }

    #[test]
    fn provider_flapping_across_period_boundary_never_double_repairs() {
        // A provider flaps down → up → down across a sampling-period
        // boundary (the paper's 1-hour statistics period). The first outage
        // triggers an active repair that moves every affected chunk away;
        // when the provider flaps again, the repair pass must find nothing
        // to do — repairing twice would re-encode (and re-bill) every object
        // for no benefit.
        use scalia_providers::failure::OutageSchedule;
        use scalia_types::time::SimTime;

        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();

        let keys: Vec<ObjectKey> = (0..3)
            .map(|i| ObjectKey::new("flap", format!("obj{i}.bin")))
            .collect();
        for key in &keys {
            cluster
                .put(key, vec![9u8; 300_000], "application/x-tar", rule(), None)
                .unwrap();
        }
        let victim = engine.read_metadata(&keys[0]).unwrap().striping.chunks[0].provider;

        // Down during [60, 61) and again during [61, 62): the flap spans the
        // hour-60→61 sampling-period boundary exactly.
        let schedule = OutageSchedule::from_hours(&[(60, 61), (61, 62)]);
        let mut versions_after_first_repair = Vec::new();

        for hour in 59..63u64 {
            let now = SimTime::from_hours(hour);
            cluster.tick(now);
            let down = schedule.is_down(now);
            infra.set_provider_down(victim, down);
            if down {
                let report =
                    repair_provider(&engine, &infra, victim, &PlacementEngine::new()).unwrap();
                match hour {
                    60 => {
                        assert_eq!(report.objects_affected, keys.len());
                        assert_eq!(report.objects_repaired, keys.len());
                        versions_after_first_repair = keys
                            .iter()
                            .map(|k| engine.read_metadata(k).unwrap().version)
                            .collect();
                    }
                    61 => {
                        assert_eq!(
                            report.objects_affected, 0,
                            "second pass of the flap must find nothing to repair"
                        );
                        assert_eq!(report.objects_repaired, 0);
                        let versions_now: Vec<_> = keys
                            .iter()
                            .map(|k| engine.read_metadata(k).unwrap().version)
                            .collect();
                        assert_eq!(
                            versions_now, versions_after_first_repair,
                            "no object may be re-encoded by the second pass"
                        );
                    }
                    _ => unreachable!("provider only down at hours 60 and 61"),
                }
            }
        }

        // After recovery everything is readable and off the victim.
        cluster.caches().iter().for_each(|c| c.clear());
        for key in &keys {
            let meta = engine.read_metadata(key).unwrap();
            assert!(meta.striping.chunks.iter().all(|c| c.provider != victim));
            assert_eq!(cluster.get(key).unwrap().len(), 300_000);
        }
    }

    #[test]
    fn repair_with_no_affected_objects_is_a_noop() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();
        let key = ObjectKey::new("c", "k");
        cluster
            .put(&key, vec![1u8; 10_000], "image/png", rule(), None)
            .unwrap();
        let meta = engine.read_metadata(&key).unwrap();
        // Pick a provider that holds no chunk of this object.
        let unused = infra
            .catalog()
            .all()
            .into_iter()
            .find(|p| !meta.striping.chunks.iter().any(|c| c.provider == p.id))
            .map(|p| p.id);
        if let Some(unused) = unused {
            infra.set_provider_down(unused, true);
            let report = repair_provider(&engine, &infra, unused, &PlacementEngine::new()).unwrap();
            assert_eq!(report.objects_affected, 0);
            assert_eq!(report.objects_repaired, 0);
        }
    }
}
