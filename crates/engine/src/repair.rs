//! Durability repair: a persistent, risk-prioritised repair queue (§IV-E).
//!
//! When a provider suffers a transient outage, Scalia may either wait for it
//! to recover or *actively repair*: move the chunks that lived on the faulty
//! provider to another provider, reconstructing them from the surviving
//! chunks. Repair changes the placement, so the threshold of the most
//! cost-effective set may change too — in that case every chunk is
//! re-written; otherwise only the missing chunk is.
//!
//! # The repair queue
//!
//! Repair work is *persistent*: every object that needs attention has a row
//! `repair:{object_row_key}` in the metastore with a single `item` column
//! holding `{container, key, reason, attempts, not_before_secs, dead}`.
//! Entries are created by [`enqueue`] (provider outages) and by the engine's
//! commit path itself (degraded writes record their durability debt and
//! queue entry in the same journaled transaction as the metadata — a crash
//! can never ack a degraded write without also queueing its backfill).
//!
//! [`drain_repair_queue`] runs each clock advance under the cluster's
//! [`MigrationBudget`] and processes entries in **durability-risk order**:
//!
//! 1. availability deficit, descending — how far the object's *currently
//!    reachable* chunk subset falls below its rule's availability target
//!    (`target.probability() − get_availability(reachable, m).probability()`);
//! 2. object size, descending — among equally-at-risk objects, repairing the
//!    largest first recovers the most bytes of durability per pass;
//! 3. row key, ascending — a total order, for determinism.
//!
//! Failed attempts back off exponentially (base 60 s doubling to a 1 h cap)
//! with a deterministic per-item jitter, and after
//! [`DEAD_LETTER_ATTEMPTS`] consecutive failures the entry turns *dead*: it
//! is no longer retried but stays in the metastore and is surfaced in every
//! [`RepairDrainReport`] — dead-lettered work is visible, never dropped.
//! Entries resolve (queue row deleted) when the object is repaired, has
//! become healthy on its own (the provider came back), or was deleted.
//!
//! Repair migrations run through [`Engine::replace_placement`], so their
//! chunk reads and writes use the same parallel chunk-I/O layer
//! ([`crate::chunk_io`]) as the client data path: reconstruction reads are
//! hedged across the surviving providers and the re-written chunks fan out
//! in parallel with rollback on failure. A successful migration commits at
//! full width, which settles any degraded-write debt atomically.

use crate::engine::Engine;
use crate::infra::Infrastructure;
use scalia_core::availability::get_availability;
use scalia_core::cost::PredictedUsage;
use scalia_core::migration::MigrationBudget;
use scalia_core::placement::PlacementEngine;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::money::Money;
use scalia_types::object::{ObjectKey, ObjectMeta};
use scalia_types::time::SimTime;
use serde_json::{json, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Row-key prefix of repair-queue entries in the metastore.
pub const REPAIR_QUEUE_PREFIX: &str = "repair:";

/// Consecutive failed attempts after which an entry is dead-lettered.
pub const DEAD_LETTER_ATTEMPTS: u32 = 8;

/// First-retry backoff after a failed repair attempt.
const REPAIR_BACKOFF_BASE_SECS: u64 = 60;

/// Ceiling on the repair retry backoff.
const REPAIR_BACKOFF_CAP_SECS: u64 = 3600;

/// Spread of the deterministic retry jitter.
const REPAIR_BACKOFF_JITTER_SECS: u64 = 30;

/// How to react to a provider outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Do nothing and wait for the provider to recover.
    Wait,
    /// Reconstruct the affected chunks and move them to other providers.
    ActiveRepair,
}

/// Outcome of a repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Objects that had a chunk on the failed provider.
    pub objects_affected: usize,
    /// Objects successfully moved to a new provider set.
    pub objects_repaired: usize,
    /// Objects that could not be repaired (e.g. no feasible placement).
    pub objects_failed: usize,
}

/// Outcome of one [`drain_repair_queue`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairDrainReport {
    /// Queue entries examined this pass.
    pub scanned: usize,
    /// Entries for which a re-placement migration was attempted.
    pub attempted: usize,
    /// Entries repaired by a successful migration.
    pub repaired: usize,
    /// Entries that resolved without data movement (object healthy again,
    /// or deleted).
    pub resolved: usize,
    /// Entries whose migration attempt failed this pass.
    pub failed: usize,
    /// Entries currently in the dead-letter state (surfaced, not retried).
    pub dead_lettered: usize,
    /// Entries deferred because the migration budget was exhausted.
    pub deferred_budget: usize,
    /// Entries deferred because their retry backoff has not elapsed.
    pub deferred_backoff: usize,
    /// Payload bytes re-encoded by successful repairs.
    pub bytes_moved: u64,
}

/// A parsed repair-queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairQueueEntry {
    /// The object needing repair.
    pub key: ObjectKey,
    /// Why it was queued (`"provider-outage"`, `"degraded-write"`, …).
    pub reason: String,
    /// Failed attempts so far.
    pub attempts: u32,
    /// Simulation second before which the entry must not be retried.
    pub not_before_secs: u64,
    /// Dead-lettered: no longer retried, surfaced in every drain report.
    pub dead: bool,
}

impl RepairQueueEntry {
    fn from_value(value: &Value) -> Option<Self> {
        Some(RepairQueueEntry {
            key: ObjectKey::new(
                value.get("container")?.as_str()?,
                value.get("key")?.as_str()?,
            ),
            reason: value.get("reason")?.as_str()?.to_string(),
            attempts: value.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
            not_before_secs: value
                .get("not_before_secs")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            dead: value.get("dead").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    fn to_value(&self) -> Value {
        json!({
            "container": self.key.container,
            "key": self.key.key,
            "reason": self.reason,
            "attempts": self.attempts,
            "not_before_secs": self.not_before_secs,
            "dead": self.dead,
        })
    }
}

/// The repair-queue row key of an object metadata row.
pub fn queue_row_key(object_row_key: &str) -> String {
    format!("{REPAIR_QUEUE_PREFIX}{object_row_key}")
}

/// A fresh queue-entry value (attempt counter zeroed, immediately due) —
/// also used by the engine's degraded-write commit, which journals the
/// entry in the same transaction as the metadata.
pub fn queue_item(key: &ObjectKey, reason: &str) -> Value {
    RepairQueueEntry {
        key: key.clone(),
        reason: reason.to_string(),
        attempts: 0,
        not_before_secs: 0,
        dead: false,
    }
    .to_value()
}

/// Deterministic retry backoff: exponential from the base (exponent capped),
/// plus a per-(item, attempt) jitter so retries of many items queued by one
/// outage do not all come due on the same clock advance.
fn repair_backoff_secs(queue_row: &str, attempts: u32) -> u64 {
    let exponent = attempts.saturating_sub(1).min(6);
    let base = REPAIR_BACKOFF_BASE_SECS << exponent;
    let mut hasher = DefaultHasher::new();
    queue_row.hash(&mut hasher);
    attempts.hash(&mut hasher);
    let jitter = hasher.finish() % REPAIR_BACKOFF_JITTER_SECS;
    (base + jitter).min(REPAIR_BACKOFF_CAP_SECS)
}

fn first_up_node(infra: &Infrastructure) -> Result<Arc<scalia_metastore::store::NoSqlNode>> {
    infra
        .database()
        .nodes()
        .iter()
        .find(|n| n.is_up())
        .cloned()
        .ok_or(ScaliaError::DatacenterUnavailable(0))
}

/// Queues an object for repair. Keeps an existing live entry untouched (so
/// its backoff state survives re-discovery by a later outage scan); a dead
/// entry is revived with a fresh attempt counter — a new incident earns a
/// new round of retries.
pub fn enqueue(infra: &Infrastructure, key: &ObjectKey, reason: &str) -> Result<()> {
    let queue_row = queue_row_key(&key.row_key());
    let node = first_up_node(infra)?;
    let existing = node
        .get_latest(&queue_row, "item")
        .and_then(|cell| RepairQueueEntry::from_value(&cell.value));
    if matches!(existing, Some(ref entry) if !entry.dead) {
        return Ok(());
    }
    let timestamp = infra.next_timestamp();
    infra
        .database()
        .put(&queue_row, "item", queue_item(key, reason), timestamp)?;
    infra.database().prune_old_versions(&queue_row, "item");
    Ok(())
}

/// Operator override: re-admits every dead-lettered queue entry with a
/// fresh attempt counter and no backoff, so the next
/// [`drain_repair_queue`] retries it immediately. The operator calls this
/// after fixing whatever kept the repairs failing (a provider restored, a
/// catalog change); the entries themselves keep their original reason.
/// Returns how many entries were re-admitted.
pub fn requeue_dead_letters(infra: &Infrastructure) -> Result<usize> {
    let mut revived = 0usize;
    for (queue_row, entry) in queue_entries(infra)? {
        if !entry.dead {
            continue;
        }
        let timestamp = infra.next_timestamp();
        infra.database().put(
            &queue_row,
            "item",
            queue_item(&entry.key, &entry.reason),
            timestamp,
        )?;
        infra.database().prune_old_versions(&queue_row, "item");
        revived += 1;
    }
    Ok(revived)
}

/// All current repair-queue entries, keyed by queue row.
pub fn queue_entries(infra: &Infrastructure) -> Result<Vec<(String, RepairQueueEntry)>> {
    let node = first_up_node(infra)?;
    Ok(node
        .scan_prefix(REPAIR_QUEUE_PREFIX)
        .into_iter()
        .filter_map(|queue_row| {
            let cell = node.get_latest(&queue_row, "item")?;
            let entry = RepairQueueEntry::from_value(&cell.value)?;
            Some((queue_row, entry))
        })
        .collect())
}

/// Reachability and worst-case availability of a (possibly striped)
/// striping. Each stripe of a striped object is its own `m`-of-`n` code
/// group, so the object's durability is its *worst* stripe's — one degraded
/// stripe degrades the whole object. Returns whether every chunk of every
/// stripe sits on a catalog-available provider, plus the minimum achieved
/// availability probability across stripes (a single-stripe object is its
/// own one view).
fn striping_health(
    catalog: &scalia_providers::catalog::ProviderCatalog,
    striping: &scalia_types::object::StripingMeta,
) -> (bool, f64) {
    let views: Vec<scalia_types::object::StripingMeta> = if striping.is_striped() {
        (0..striping.stripe_count())
            .map(|i| striping.stripe_view(i))
            .collect()
    } else {
        vec![striping.clone()]
    };
    let mut all_reachable = true;
    let mut worst = f64::INFINITY;
    for view in &views {
        let reachable: Vec<_> = view
            .chunks
            .iter()
            .filter(|c| catalog.is_available(c.provider))
            .filter_map(|c| catalog.get(c.provider))
            .collect();
        all_reachable &= reachable.len() == view.chunks.len();
        worst = worst.min(get_availability(&reachable, view.m).probability());
    }
    (all_reachable, worst)
}

struct RepairCandidate {
    queue_row: String,
    entry: RepairQueueEntry,
    meta: ObjectMeta,
    /// `target − achieved` availability over the currently reachable chunks:
    /// positive means the object is below its rule's floor right now.
    deficit: f64,
}

/// Drains the repair queue once, in durability-risk order, under `budget`.
///
/// Every entry is either repaired, resolved, deferred (budget or backoff),
/// failed (attempt counter bumped, backoff scheduled, dead-lettered past the
/// attempt cap) or reported dead — never silently dropped.
pub fn drain_repair_queue(
    engine: &Arc<Engine>,
    infra: &Arc<Infrastructure>,
    placement_engine: &PlacementEngine,
    budget: &MigrationBudget,
    now: SimTime,
) -> Result<RepairDrainReport> {
    let mut report = RepairDrainReport::default();
    let node = first_up_node(infra)?;
    let catalog = infra.catalog();

    let mut candidates: Vec<RepairCandidate> = Vec::new();
    for (queue_row, entry) in queue_entries(infra)? {
        report.scanned += 1;
        if entry.dead {
            report.dead_lettered += 1;
            continue;
        }
        if entry.not_before_secs > now.secs() {
            report.deferred_backoff += 1;
            continue;
        }
        let meta = match engine.read_metadata(&entry.key) {
            Ok(meta) => meta,
            Err(_) => {
                // The object is gone; its debt went with it.
                infra.database().delete_row(&queue_row);
                report.resolved += 1;
                continue;
            }
        };
        let (all_reachable, achieved) = striping_health(catalog, &meta.striping);
        let has_debt = node
            .get_latest(&meta.row_key(), "debt")
            .is_some_and(|cell| !cell.value.is_null());
        if all_reachable && !has_debt {
            // Healthy again (e.g. the provider recovered before we got to
            // it) at full width: nothing to move.
            infra.database().delete_row(&queue_row);
            report.resolved += 1;
            continue;
        }
        let deficit = meta.rule.availability.probability() - achieved;
        candidates.push(RepairCandidate {
            queue_row,
            entry,
            meta,
            deficit,
        });
    }

    // Most durability risk first; size breaks ties (most bytes of durability
    // recovered per admitted migration); row key makes the order total.
    candidates.sort_by(|a, b| {
        b.deficit
            .partial_cmp(&a.deficit)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.meta.size.bytes().cmp(&a.meta.size.bytes()))
            .then_with(|| a.queue_row.cmp(&b.queue_row))
    });

    let period_hours = infra.sampling_period().as_hours();
    let mut ledger = budget.start();
    for candidate in candidates {
        let RepairCandidate {
            queue_row,
            mut entry,
            meta,
            ..
        } = candidate;
        // Repair is mandatory work, budgeted by bytes only: the cost
        // dimension guards discretionary cost-optimisation migrations.
        if !ledger.admit(meta.size.bytes(), Money::ZERO) {
            report.deferred_budget += 1;
            continue;
        }
        report.attempted += 1;

        let history = infra.statistics(engine.datacenter()).history(
            &meta.key.row_key(),
            scalia_types::stats::DEFAULT_HISTORY_LEN,
        );
        let periods = 24.max(history.len());
        let usage = PredictedUsage::from_history(meta.size, &history, periods, period_hours);
        // Cached: objects of the same class sharing the failed provider are
        // re-placed with one search (the outage bumped the catalog version,
        // so no pre-outage decision can leak through).
        let class = scalia_core::classify::ObjectClass::of(&meta.mime, meta.size);
        let repaired = infra
            .best_placement_cached(placement_engine, &meta.rule, class.id(), &usage)
            .and_then(|decision| engine.replace_placement(&meta.key, &decision.placement));
        match repaired {
            Ok(_) => {
                // The full-width commit settled any durability debt
                // atomically; retire the queue entry.
                infra.database().delete_row(&queue_row);
                report.repaired += 1;
                report.bytes_moved += meta.size.bytes();
            }
            Err(_) => {
                report.failed += 1;
                entry.attempts += 1;
                entry.not_before_secs =
                    now.secs() + repair_backoff_secs(&queue_row, entry.attempts);
                if entry.attempts >= DEAD_LETTER_ATTEMPTS {
                    entry.dead = true;
                    report.dead_lettered += 1;
                }
                let timestamp = infra.next_timestamp();
                infra
                    .database()
                    .put(&queue_row, "item", entry.to_value(), timestamp)?;
                infra.database().prune_old_versions(&queue_row, "item");
            }
        }
    }
    Ok(report)
}

/// Scans the metadata for objects with a chunk on `failed_provider`, queues
/// each for repair and drains the queue immediately with an unlimited
/// budget.
///
/// The provider should already be marked unavailable in the catalog (so the
/// placement search cannot pick it again); this function does not change the
/// catalog state.
pub fn repair_provider(
    engine: &Arc<Engine>,
    infra: &Arc<Infrastructure>,
    failed_provider: ProviderId,
    placement_engine: &PlacementEngine,
) -> Result<RepairReport> {
    let node = first_up_node(infra)?;

    // Find every object whose striping references the failed provider.
    let affected: Vec<ObjectMeta> = node
        .snapshot()
        .into_iter()
        .filter_map(|(_, row)| {
            row.get("meta")
                .and_then(|cells| cells.last())
                .and_then(|cell| serde_json::from_value::<ObjectMeta>(cell.value.clone()).ok())
        })
        // `provider_set()`, not the top-level chunk list: a striped object
        // references its providers per stripe, and an outage scan that only
        // looked at the (empty) top-level list would never repair one.
        .filter(|meta| meta.striping.provider_set().contains(&failed_provider))
        .collect();

    for meta in &affected {
        enqueue(infra, &meta.key, "provider-outage")?;
    }
    let drain = drain_repair_queue(
        engine,
        infra,
        placement_engine,
        &MigrationBudget::UNLIMITED,
        infra.now(),
    )?;
    Ok(RepairReport {
        objects_affected: affected.len(),
        objects_repaired: drain.repaired + drain.resolved,
        objects_failed: drain.failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ScaliaCluster;
    use scalia_types::object::ObjectKey;
    use scalia_types::reliability::Reliability;
    use scalia_types::rules::StorageRule;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "repair",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            0.5,
        )
    }

    #[test]
    fn active_repair_moves_chunks_off_the_failed_provider() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();

        // Store several objects.
        let keys: Vec<ObjectKey> = (0..4)
            .map(|i| ObjectKey::new("backups", format!("obj{i}.tar")))
            .collect();
        for key in &keys {
            cluster
                .put(key, vec![6u8; 500_000], "application/x-tar", rule(), None)
                .unwrap();
        }

        // Fail a provider that actually holds chunks.
        let victim = {
            let meta = engine.read_metadata(&keys[0]).unwrap();
            meta.striping.chunks[0].provider
        };
        infra.set_provider_down(victim, true);

        let report = repair_provider(&engine, &infra, victim, &PlacementEngine::new()).unwrap();
        assert!(report.objects_affected >= 1);
        assert_eq!(report.objects_failed, 0);
        assert_eq!(report.objects_repaired, report.objects_affected);

        // The queue drained completely.
        assert!(queue_entries(&infra).unwrap().is_empty());

        // No object references the failed provider any more, and every
        // object is still readable while the provider stays down.
        cluster.caches().iter().for_each(|c| c.clear());
        for key in &keys {
            let meta = engine.read_metadata(key).unwrap();
            assert!(meta.striping.chunks.iter().all(|c| c.provider != victim));
            assert_eq!(cluster.get(key).unwrap().len(), 500_000);
        }
    }

    #[test]
    fn provider_flapping_across_period_boundary_never_double_repairs() {
        // A provider flaps down → up → down across a sampling-period
        // boundary (the paper's 1-hour statistics period). The first outage
        // triggers an active repair that moves every affected chunk away;
        // when the provider flaps again, the repair pass must find nothing
        // to do — repairing twice would re-encode (and re-bill) every object
        // for no benefit.
        use scalia_providers::failure::OutageSchedule;
        use scalia_types::time::SimTime;

        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();

        let keys: Vec<ObjectKey> = (0..3)
            .map(|i| ObjectKey::new("flap", format!("obj{i}.bin")))
            .collect();
        for key in &keys {
            cluster
                .put(key, vec![9u8; 300_000], "application/x-tar", rule(), None)
                .unwrap();
        }
        let victim = engine.read_metadata(&keys[0]).unwrap().striping.chunks[0].provider;

        // Down during [60, 61) and again during [61, 62): the flap spans the
        // hour-60→61 sampling-period boundary exactly.
        let schedule = OutageSchedule::from_hours(&[(60, 61), (61, 62)]);
        let mut versions_after_first_repair = Vec::new();

        for hour in 59..63u64 {
            let now = SimTime::from_hours(hour);
            cluster.tick(now);
            let down = schedule.is_down(now);
            infra.set_provider_down(victim, down);
            if down {
                let report =
                    repair_provider(&engine, &infra, victim, &PlacementEngine::new()).unwrap();
                match hour {
                    60 => {
                        assert_eq!(report.objects_affected, keys.len());
                        assert_eq!(report.objects_repaired, keys.len());
                        versions_after_first_repair = keys
                            .iter()
                            .map(|k| engine.read_metadata(k).unwrap().version)
                            .collect();
                    }
                    61 => {
                        assert_eq!(
                            report.objects_affected, 0,
                            "second pass of the flap must find nothing to repair"
                        );
                        assert_eq!(report.objects_repaired, 0);
                        let versions_now: Vec<_> = keys
                            .iter()
                            .map(|k| engine.read_metadata(k).unwrap().version)
                            .collect();
                        assert_eq!(
                            versions_now, versions_after_first_repair,
                            "no object may be re-encoded by the second pass"
                        );
                    }
                    _ => unreachable!("provider only down at hours 60 and 61"),
                }
            }
        }

        // After recovery everything is readable and off the victim.
        cluster.caches().iter().for_each(|c| c.clear());
        for key in &keys {
            let meta = engine.read_metadata(key).unwrap();
            assert!(meta.striping.chunks.iter().all(|c| c.provider != victim));
            assert_eq!(cluster.get(key).unwrap().len(), 300_000);
        }
    }

    #[test]
    fn repair_with_no_affected_objects_is_a_noop() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();
        let key = ObjectKey::new("c", "k");
        cluster
            .put(&key, vec![1u8; 10_000], "image/png", rule(), None)
            .unwrap();
        let meta = engine.read_metadata(&key).unwrap();
        // Pick a provider that holds no chunk of this object.
        let unused = infra
            .catalog()
            .all()
            .into_iter()
            .find(|p| !meta.striping.chunks.iter().any(|c| c.provider == p.id))
            .map(|p| p.id);
        if let Some(unused) = unused {
            infra.set_provider_down(unused, true);
            let report = repair_provider(&engine, &infra, unused, &PlacementEngine::new()).unwrap();
            assert_eq!(report.objects_affected, 0);
            assert_eq!(report.objects_repaired, 0);
        }
    }

    #[test]
    fn failed_repairs_back_off_and_dead_letter_after_the_attempt_cap() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();
        let key = ObjectKey::new("c", "doomed.bin");
        cluster
            .put(&key, vec![3u8; 200_000], "application/x-tar", rule(), None)
            .unwrap();
        let meta = engine.read_metadata(&key).unwrap();

        // Take down every provider but one chunk holder: no feasible
        // replacement placement exists (and the object cannot even be
        // re-read at threshold), so every repair attempt fails.
        let holders: Vec<ProviderId> = meta.striping.providers();
        for p in infra.catalog().all() {
            if p.id != holders[1] {
                infra.set_provider_down(p.id, true);
            }
        }
        enqueue(&infra, &key, "provider-outage").unwrap();

        let pe = PlacementEngine::new();
        let mut now_secs = infra.now().secs();
        for attempt in 1..=DEAD_LETTER_ATTEMPTS {
            let report = drain_repair_queue(
                &engine,
                &infra,
                &pe,
                &MigrationBudget::UNLIMITED,
                SimTime::from_secs(now_secs),
            )
            .unwrap();
            assert_eq!(report.failed, 1, "attempt {attempt} must fail");
            let (queue_row, entry) = queue_entries(&infra).unwrap().pop().unwrap();
            assert_eq!(entry.attempts, attempt);
            assert!(
                entry.not_before_secs > now_secs,
                "backoff must be scheduled"
            );
            assert_eq!(entry.dead, attempt == DEAD_LETTER_ATTEMPTS);
            assert!(queue_row.starts_with(REPAIR_QUEUE_PREFIX));
            // An immediate re-drain defers on backoff (or reports the dead
            // letter) without charging an attempt.
            let again = drain_repair_queue(
                &engine,
                &infra,
                &pe,
                &MigrationBudget::UNLIMITED,
                SimTime::from_secs(now_secs),
            )
            .unwrap();
            assert_eq!(again.failed, 0);
            if entry.dead {
                assert_eq!(again.dead_lettered, 1);
            } else {
                assert_eq!(again.deferred_backoff, 1);
            }
            now_secs = entry.not_before_secs;
        }

        // Dead letters persist: still surfaced, never dropped, never retried.
        let report = drain_repair_queue(
            &engine,
            &infra,
            &pe,
            &MigrationBudget::UNLIMITED,
            SimTime::from_secs(now_secs + 100_000),
        )
        .unwrap();
        assert_eq!(report.dead_lettered, 1);
        assert_eq!(report.attempted, 0);
        assert_eq!(queue_entries(&infra).unwrap().len(), 1);

        // Re-enqueueing after a new incident revives the dead entry.
        enqueue(&infra, &key, "provider-outage").unwrap();
        let (_, revived) = queue_entries(&infra).unwrap().pop().unwrap();
        assert!(!revived.dead);
        assert_eq!(revived.attempts, 0);
    }

    #[test]
    fn operator_requeue_readmits_dead_letters_and_the_next_drain_repairs() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();
        let key = ObjectKey::new("c", "revivable.bin");
        cluster
            .put(&key, vec![9u8; 150_000], "application/x-tar", rule(), None)
            .unwrap();
        let meta = engine.read_metadata(&key).unwrap();

        // Same incident as the dead-letter test: every provider but one
        // chunk holder down, so repairs fail until the attempt cap.
        let holders: Vec<ProviderId> = meta.striping.providers();
        for p in infra.catalog().all() {
            if p.id != holders[1] {
                infra.set_provider_down(p.id, true);
            }
        }
        enqueue(&infra, &key, "provider-outage").unwrap();
        assert_eq!(
            requeue_dead_letters(&infra).unwrap(),
            0,
            "a live entry must not be touched by the operator override"
        );

        let pe = PlacementEngine::new();
        let mut now_secs = infra.now().secs();
        for _ in 1..=DEAD_LETTER_ATTEMPTS {
            drain_repair_queue(
                &engine,
                &infra,
                &pe,
                &MigrationBudget::UNLIMITED,
                SimTime::from_secs(now_secs),
            )
            .unwrap();
            let (_, entry) = queue_entries(&infra).unwrap().pop().unwrap();
            now_secs = entry.not_before_secs;
        }
        let (_, entry) = queue_entries(&infra).unwrap().pop().unwrap();
        assert!(entry.dead, "the attempt cap must dead-letter the entry");

        // Operator fixes the world — every provider back except one original
        // chunk holder, so the object is genuinely degraded (a resolve scan
        // is not enough; chunks must move) — and re-admits the dead letter.
        for p in infra.catalog().all() {
            infra.set_provider_down(p.id, p.id == holders[0]);
        }
        assert_eq!(requeue_dead_letters(&infra).unwrap(), 1);
        let (_, revived) = queue_entries(&infra).unwrap().pop().unwrap();
        assert!(!revived.dead);
        assert_eq!(revived.attempts, 0);
        assert_eq!(
            revived.not_before_secs, 0,
            "a re-admitted entry must be immediately due"
        );
        assert_eq!(revived.reason, "provider-outage");

        // The very next drain picks it up and actually repairs it.
        let report = drain_repair_queue(
            &engine,
            &infra,
            &pe,
            &MigrationBudget::UNLIMITED,
            SimTime::from_secs(now_secs),
        )
        .unwrap();
        assert_eq!(report.repaired, 1, "re-admitted row must be repaired");
        assert_eq!(report.dead_lettered, 0);
        assert!(queue_entries(&infra).unwrap().is_empty(), "entry settled");
        let repaired = engine.read_metadata(&key).unwrap();
        assert!(!repaired.striping.providers().contains(&holders[0]));
        assert_eq!(engine.get(&key).unwrap().len(), 150_000);
    }

    #[test]
    fn budget_defers_low_risk_repairs_to_the_next_drain() {
        let cluster = ScaliaCluster::builder().build();
        let engine = cluster.engine(0).clone();
        let infra = cluster.infra().clone();

        let keys: Vec<ObjectKey> = (0..3)
            .map(|i| ObjectKey::new("budget", format!("obj{i}.tar")))
            .collect();
        for key in &keys {
            cluster
                .put(key, vec![5u8; 400_000], "application/x-tar", rule(), None)
                .unwrap();
        }
        let victim = engine.read_metadata(&keys[0]).unwrap().striping.chunks[0].provider;
        infra.set_provider_down(victim, true);
        for key in &keys {
            let meta = engine.read_metadata(key).unwrap();
            if meta.striping.chunks.iter().any(|c| c.provider == victim) {
                enqueue(&infra, key, "provider-outage").unwrap();
            }
        }
        let queued = queue_entries(&infra).unwrap().len();
        assert!(queued >= 1);

        // A 1-byte budget admits exactly one migration per drain (the first
        // candidate is always admitted); the rest defer, not fail.
        let budget = MigrationBudget::UNLIMITED.with_max_bytes(1);
        let pe = PlacementEngine::new();
        let mut total_repaired = 0;
        for _ in 0..queued {
            let report = drain_repair_queue(&engine, &infra, &pe, &budget, infra.now()).unwrap();
            assert!(report.repaired <= 1);
            assert_eq!(report.failed, 0);
            total_repaired += report.repaired;
        }
        assert_eq!(total_repaired, queued);
        assert!(queue_entries(&infra).unwrap().is_empty());
    }
}
