//! Memoization of placement decisions.
//!
//! The periodic optimiser, the active-repair pass and the write path all
//! call Algorithm 1 — and during one optimisation cycle they overwhelmingly
//! call it with the *same inputs*: objects of the same class, under the same
//! storage rule, against the same provider catalog. The paper's design
//! already groups objects into classes precisely because class members share
//! access behaviour; re-running the subset search for each member is pure
//! waste.
//!
//! [`PlacementCache`] memoizes the chosen provider set + threshold, keyed by
//!
//! * the **storage rule** (all constraint fields),
//! * the **object class** — the exact class identifier
//!   (`C(obj) = MD5(mime | discretize(size))`), so only true class members
//!   ever share a decision (the coarse cross-class power-of-two sharing of
//!   earlier revisions is gone),
//! * the **usage bucket** — each predicted-usage dimension quantized to its
//!   power-of-two bucket, which catches *temporal* drift: when a class's
//!   access pattern moves materially (a Slashdot spike), its key changes
//!   and the search re-runs instead of revalidating a stale set forever,
//! * the **catalog version** — any provider registration, removal or
//!   outage bumps the version ([`scalia_providers::catalog::ProviderCatalog::version`])
//!   and implicitly invalidates every cached decision.
//!
//! A hit is **revalidated** against the caller's exact usage with
//! `PlacementEngine::evaluate_set` (the cached set must still be feasible —
//! e.g. chunk-size limits bind to the exact object size) and the expected
//! cost is recomputed exactly; only the expensive subset *search* is
//! skipped. Within a usage bucket the cached set may be marginally
//! off-optimal for an individual object (bounded by the bucket width); the
//! optimizer's migration gate compares exact costs, so a cached set is never
//! migrated to unless it actually saves money.

use parking_lot::RwLock;
use scalia_core::cost::PredictedUsage;
use scalia_core::placement::{Placement, PlacementDecision, PlacementEngine, PlacementOptions};
use scalia_providers::descriptor::ProviderDescriptor;
use scalia_types::rules::StorageRule;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default bound on distinct cached decisions.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The quantized usage-class component of a cache key: every dimension is
/// reduced to its power-of-two bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UsageClassKey {
    size: u8,
    bw_in: u8,
    bw_out: u8,
    reads: u8,
    writes: u8,
    duration_hours: u8,
}

fn bucket(v: u64) -> u8 {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as u8
    }
}

impl UsageClassKey {
    /// Quantizes a predicted usage.
    pub fn of(usage: &PredictedUsage) -> Self {
        UsageClassKey {
            size: bucket(usage.size.bytes()),
            bw_in: bucket(usage.bw_in.bytes()),
            bw_out: bucket(usage.bw_out.bytes()),
            reads: bucket(usage.reads),
            writes: bucket(usage.writes),
            duration_hours: bucket(usage.duration_hours.max(0.0).round() as u64),
        }
    }
}

/// The full cache key: rule + exact object class + usage bucket + catalog
/// version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlacementCacheKey {
    catalog_version: u64,
    rule_name: String,
    options: PlacementOptions,
    durability_bits: u64,
    availability_bits: u64,
    zones: scalia_types::zone::ZoneSet,
    lockin_bits: u64,
    latency_weight_bits: u64,
    class_id: String,
    usage: UsageClassKey,
}

impl PlacementCacheKey {
    fn new(
        catalog_version: u64,
        options: PlacementOptions,
        rule: &StorageRule,
        class_id: &str,
        usage: &PredictedUsage,
    ) -> Self {
        PlacementCacheKey {
            catalog_version,
            options,
            rule_name: rule.name.clone(),
            durability_bits: rule.durability.probability().to_bits(),
            availability_bits: rule.availability.probability().to_bits(),
            zones: rule.zones,
            lockin_bits: rule.lockin.to_bits(),
            latency_weight_bits: rule.latency_weight.to_bits(),
            class_id: class_id.to_string(),
            usage: UsageClassKey::of(usage),
        }
    }
}

/// Hit/miss counters of a [`PlacementCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementCacheStats {
    /// Searches answered from the cache.
    pub hits: u64,
    /// Searches that ran the full subset search.
    pub misses: u64,
}

/// A bounded, thread-safe memo of placement decisions.
///
/// Concurrency: lookups take a **read** lock (concurrent optimiser shards
/// revalidate hits fully in parallel) and no lock is ever held across a
/// subset search or a revalidation — the write lock is taken only for the
/// final insert of a freshly-computed decision. Racing threads may both run
/// the same search on a miss; last insert wins, which is harmless because
/// both computed the same optimum for the same catalog version.
#[derive(Debug)]
pub struct PlacementCache {
    entries: RwLock<HashMap<PlacementCacheKey, Arc<Placement>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl Default for PlacementCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementCache {
    /// Creates a cache bounded to [`DEFAULT_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        PlacementCache {
            entries: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Runs (or reuses) the placement search for `rule` + `class_id` +
    /// `usage` against the catalog snapshot produced by `providers` (the
    /// available set at `catalog_version`). The supplier is only invoked on
    /// a miss, so cache hits never pay the catalog clone.
    ///
    /// On a hit, the cached provider set is revalidated against the exact
    /// usage and its cost recomputed exactly; on a miss (or failed
    /// revalidation) the full search runs and the winning placement is
    /// memoized.
    pub fn best_placement(
        &self,
        engine: &PlacementEngine,
        rule: &StorageRule,
        class_id: &str,
        usage: &PredictedUsage,
        providers: impl FnOnce() -> Vec<ProviderDescriptor>,
        catalog_version: u64,
    ) -> Result<PlacementDecision, scalia_types::error::ScaliaError> {
        // Engines with different search strategies (exhaustive vs pruning
        // heuristic) must not share entries: a heuristic decision is not
        // necessarily the exact optimum an exhaustive caller expects.
        let key = PlacementCacheKey::new(catalog_version, engine.options(), rule, class_id, usage);
        let cached = self.entries.read().get(&key).cloned();
        if let Some(placement) = cached {
            if let Some((m, price)) =
                PlacementEngine::evaluate_set(rule, usage, &placement.providers)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PlacementDecision {
                    placement: Placement {
                        providers: placement.providers.clone(),
                        // The exact-usage threshold can differ within the
                        // bucket (chunk-size limits bind to the true size).
                        m,
                    },
                    expected_cost: price,
                });
            }
            // Cached set no longer feasible for this exact usage: fall
            // through to a fresh search (and overwrite the entry).
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let decision = engine.best_placement(rule, usage, &providers())?;
        let mut entries = self.entries.write();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // Simple bound: drop everything. Entries are cheap to rebuild
            // (one search each) and stale versions never get hit anyway.
            entries.clear();
        }
        entries.insert(key, Arc::new(decision.placement.clone()));
        Ok(decision)
    }

    /// Hit/miss counters since creation.
    pub fn stats(&self) -> PlacementCacheStats {
        PlacementCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` if no decision is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached decision (tests and manual invalidation).
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalia_providers::catalog::{azure, google, rackspace, s3_high, s3_low};
    use scalia_types::ids::ProviderId;
    use scalia_types::reliability::Reliability;
    use scalia_types::size::ByteSize;
    use scalia_types::zone::ZoneSet;

    fn catalog() -> Vec<ProviderDescriptor> {
        vec![
            s3_high(ProviderId::new(0)),
            s3_low(ProviderId::new(1)),
            rackspace(ProviderId::new(2)),
            azure(ProviderId::new(3)),
            google(ProviderId::new(4)),
        ]
    }

    fn rule() -> StorageRule {
        StorageRule::new(
            "cache",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            0.5,
        )
    }

    #[test]
    fn repeated_searches_hit_the_cache() {
        let cache = PlacementCache::new();
        let engine = PlacementEngine::new();
        let usage = PredictedUsage::storage_only(ByteSize::from_mb(1), 24.0);
        let first = cache
            .best_placement(&engine, &rule(), "cls", &usage, catalog, 7)
            .unwrap();
        let second = cache
            .best_placement(&engine, &rule(), "cls", &usage, catalog, 7)
            .unwrap();
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn same_bucket_usage_reuses_the_decision_with_exact_cost() {
        let cache = PlacementCache::new();
        let engine = PlacementEngine::new();
        // Same power-of-two bucket (600 KB and 1000 KB are both in
        // (2^19, 2^20] bytes), different exact size.
        let a = PredictedUsage::storage_only(ByteSize::from_kb(600), 24.0);
        let b = PredictedUsage::storage_only(ByteSize::from_kb(1000), 24.0);
        let da = cache
            .best_placement(&engine, &rule(), "cls", &a, catalog, 1)
            .unwrap();
        let db = cache
            .best_placement(&engine, &rule(), "cls", &b, catalog, 1)
            .unwrap();
        assert_eq!(cache.stats().hits, 1, "same class must hit");
        assert!(da.placement.same_as(&db.placement));
        // The cost is recomputed for the exact usage, not copied.
        assert!(db.expected_cost > da.expected_cost);
    }

    #[test]
    fn catalog_version_change_invalidates() {
        let cache = PlacementCache::new();
        let engine = PlacementEngine::new();
        let usage = PredictedUsage::storage_only(ByteSize::from_mb(1), 24.0);
        cache
            .best_placement(&engine, &rule(), "cls", &usage, catalog, 1)
            .unwrap();
        cache
            .best_placement(&engine, &rule(), "cls", &usage, catalog, 2)
            .unwrap();
        assert_eq!(cache.stats().misses, 2, "new catalog version must miss");
    }

    #[test]
    fn different_rules_do_not_share_entries() {
        let cache = PlacementCache::new();
        let engine = PlacementEngine::new();
        let usage = PredictedUsage::storage_only(ByteSize::from_mb(1), 24.0);
        cache
            .best_placement(&engine, &rule(), "cls", &usage, catalog, 1)
            .unwrap();
        let stricter = rule().with_lockin(0.2);
        let d = cache
            .best_placement(&engine, &stricter, "cls", &usage, catalog, 1)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(
            d.placement.providers.len(),
            5,
            "lock-in 0.2 needs 5 providers"
        );
    }

    #[test]
    fn different_search_strategies_do_not_share_entries() {
        use scalia_core::placement::SearchStrategy;
        let cache = PlacementCache::new();
        let usage = PredictedUsage::storage_only(ByteSize::from_mb(1), 24.0);
        let heuristic = PlacementEngine::with_options(PlacementOptions {
            strategy: SearchStrategy::Heuristic { max_candidates: 3 },
        });
        cache
            .best_placement(&heuristic, &rule(), "cls", &usage, catalog, 1)
            .unwrap();
        // An exhaustive caller with the same rule/usage/version must run
        // its own exact search, not inherit the heuristic's answer.
        let exhaustive = PlacementEngine::new();
        cache
            .best_placement(&exhaustive, &rule(), "cls", &usage, catalog, 1)
            .unwrap();
        assert_eq!(
            cache.stats().misses,
            2,
            "strategy must be part of the cache key"
        );
    }

    #[test]
    fn infeasible_revalidation_falls_back_to_search() {
        let cache = PlacementCache::new();
        let engine = PlacementEngine::new();
        // Seed the class entry with a small object…
        let small = PredictedUsage::storage_only(ByteSize::from_kb(600), 24.0);
        let mut providers = catalog();
        providers[0] = providers[0]
            .clone()
            .with_max_chunk_size(ByteSize::from_kb(700));
        let d_small = cache
            .best_placement(&engine, &rule(), "cls", &small, || providers.clone(), 3)
            .unwrap();
        // …then ask for a same-bucket larger object that breaks the cached
        // set's chunk limit (if the limited provider was chosen).
        let large = PredictedUsage::storage_only(ByteSize::from_kb(1000), 24.0);
        let d_large = cache
            .best_placement(&engine, &rule(), "cls", &large, || providers.clone(), 3)
            .unwrap();
        let chunk = large.size.div_ceil(d_large.placement.m as usize);
        for p in &d_large.placement.providers {
            assert!(p.accepts_chunk(chunk), "revalidation must keep feasibility");
        }
        let _ = d_small;
    }

    #[test]
    fn capacity_bound_holds() {
        let cache = PlacementCache::with_capacity(2);
        let engine = PlacementEngine::new();
        for i in 0..5u64 {
            let usage = PredictedUsage::storage_only(ByteSize::from_kb(10 << i), 24.0);
            cache
                .best_placement(&engine, &rule(), "cls", &usage, catalog, 1)
                .unwrap();
        }
        assert!(cache.len() <= 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
