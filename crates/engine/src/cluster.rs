//! The multi-datacenter Scalia deployment.
//!
//! A [`ScaliaCluster`] wires together the full architecture of Fig. 4: per
//! datacenter a cache, a database node (via the replicated store) and a set
//! of stateless engines with their log agents; clients send requests
//! "indifferently to each datacenter", which the cluster models by routing
//! requests round-robin across all engines. The cluster also owns the
//! simulation clock: [`ScaliaCluster::tick`] advances time, charges storage
//! at every provider, flushes the log-aggregation pipeline into the
//! statistics tables and reconciles the database replicas.

use crate::cache::Cache;
use crate::engine::Engine;
use crate::infra::Infrastructure;
use crate::optimizer::{OptimizationReport, PeriodicOptimizer};
use crate::repair::{drain_repair_queue, RepairDrainReport};
use bytes::Bytes;
use parking_lot::Mutex;
use scalia_core::migration::MigrationBudget;
use scalia_core::placement::{PlacementEngine, PlacementOptions};
use scalia_core::trend::TrendDetector;
use scalia_metastore::logagg::{LogAgent, LogAggregator};
use scalia_providers::catalog::ProviderCatalog;
use scalia_types::error::Result;
use scalia_types::ids::{DatacenterId, EngineId};
use scalia_types::money::Money;
use scalia_types::object::{ObjectKey, ObjectMeta};
use scalia_types::rules::StorageRule;
use scalia_types::size::ByteSize;
use scalia_types::time::{Duration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One datacenter of the deployment.
struct DatacenterRuntime {
    #[allow(dead_code)]
    id: DatacenterId,
    cache: Arc<Cache>,
}

/// A running multi-datacenter Scalia deployment.
pub struct ScaliaCluster {
    infra: Arc<Infrastructure>,
    datacenters: Vec<DatacenterRuntime>,
    engines: Vec<Arc<Engine>>,
    aggregator: LogAggregator,
    optimizer: PeriodicOptimizer,
    next_engine: AtomicUsize,
    repair_budget: MigrationBudget,
    repair_placement: PlacementEngine,
    last_repair_drain: Mutex<RepairDrainReport>,
}

/// Builder for [`ScaliaCluster`].
pub struct ScaliaClusterBuilder {
    datacenters: u32,
    engines_per_datacenter: u32,
    catalog: Option<Arc<ProviderCatalog>>,
    cache_capacity: ByteSize,
    sampling_period: Duration,
    placement_options: PlacementOptions,
    trend_detector: TrendDetector,
    migration_budget: MigrationBudget,
}

impl Default for ScaliaClusterBuilder {
    fn default() -> Self {
        ScaliaClusterBuilder {
            datacenters: 2,
            engines_per_datacenter: 2,
            catalog: None,
            cache_capacity: ByteSize::from_mb(256),
            sampling_period: Duration::HOUR,
            placement_options: PlacementOptions::default(),
            trend_detector: TrendDetector::default(),
            migration_budget: MigrationBudget::UNLIMITED,
        }
    }
}

impl ScaliaClusterBuilder {
    /// Number of datacenters (default 2, as in the paper's Fig. 4).
    pub fn datacenters(mut self, n: u32) -> Self {
        self.datacenters = n.max(1);
        self
    }

    /// Number of engines per datacenter (default 2).
    pub fn engines_per_datacenter(mut self, n: u32) -> Self {
        self.engines_per_datacenter = n.max(1);
        self
    }

    /// Provider catalog to broker over (default: the paper's Fig. 3 catalog).
    pub fn catalog(mut self, catalog: Arc<ProviderCatalog>) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Per-datacenter cache capacity (default 256 MB; zero disables caching).
    pub fn cache_capacity(mut self, capacity: ByteSize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sampling period for statistics collection (default 1 hour).
    pub fn sampling_period(mut self, period: Duration) -> Self {
        self.sampling_period = period;
        self
    }

    /// Placement-search options (exhaustive vs heuristic).
    pub fn placement_options(mut self, options: PlacementOptions) -> Self {
        self.placement_options = options;
        self
    }

    /// Trend detector used by the periodic optimiser.
    pub fn trend_detector(mut self, detector: TrendDetector) -> Self {
        self.trend_detector = detector;
        self
    }

    /// Per-cycle migration budget of the periodic optimiser (default:
    /// unlimited). With a budget, candidate migrations are executed
    /// best-savings-per-byte-first and the tail is deferred to the next
    /// cycle.
    pub fn migration_budget(mut self, budget: MigrationBudget) -> Self {
        self.migration_budget = budget;
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> ScaliaCluster {
        let catalog = self.catalog.unwrap_or_else(ProviderCatalog::paper_catalog);
        let infra = Infrastructure::new(catalog, self.datacenters, self.sampling_period);

        let mut datacenters = Vec::new();
        for dc in 0..self.datacenters {
            datacenters.push(DatacenterRuntime {
                id: DatacenterId::new(dc),
                cache: Cache::shared(self.cache_capacity),
            });
        }
        let all_caches: Vec<Arc<Cache>> = datacenters.iter().map(|d| d.cache.clone()).collect();

        let mut engines = Vec::new();
        let mut agents = Vec::new();
        let mut engine_id = 0u32;
        for dc in 0..self.datacenters {
            for _ in 0..self.engines_per_datacenter {
                let agent = LogAgent::shared();
                agents.push(agent.clone());
                engines.push(Arc::new(Engine::new(
                    EngineId::new(engine_id),
                    DatacenterId::new(dc),
                    infra.clone(),
                    datacenters[dc as usize].cache.clone(),
                    all_caches.clone(),
                    agent,
                    PlacementEngine::with_options(self.placement_options),
                )));
                engine_id += 1;
            }
        }

        ScaliaCluster {
            infra,
            datacenters,
            engines,
            aggregator: LogAggregator::new(agents),
            optimizer: PeriodicOptimizer::new(
                self.trend_detector,
                PlacementEngine::with_options(self.placement_options),
            )
            .with_migration_budget(self.migration_budget),
            next_engine: AtomicUsize::new(0),
            repair_budget: self.migration_budget,
            repair_placement: PlacementEngine::with_options(self.placement_options),
            last_repair_drain: Mutex::new(RepairDrainReport::default()),
        }
    }
}

impl ScaliaCluster {
    /// Starts building a cluster.
    pub fn builder() -> ScaliaClusterBuilder {
        ScaliaClusterBuilder::default()
    }

    /// The shared infrastructure handle.
    pub fn infra(&self) -> &Arc<Infrastructure> {
        &self.infra
    }

    /// Number of engines across all datacenters.
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// A specific engine (index order: datacenter-major).
    pub fn engine(&self, index: usize) -> &Arc<Engine> {
        &self.engines[index % self.engines.len()]
    }

    /// All engines.
    pub fn engines(&self) -> &[Arc<Engine>] {
        &self.engines
    }

    /// The per-datacenter caches.
    pub fn caches(&self) -> Vec<Arc<Cache>> {
        self.datacenters.iter().map(|d| d.cache.clone()).collect()
    }

    fn route(&self) -> &Arc<Engine> {
        let idx = self.next_engine.fetch_add(1, Ordering::Relaxed);
        &self.engines[idx % self.engines.len()]
    }

    /// Stores an object through a (round-robin chosen) engine.
    pub fn put(
        &self,
        key: &ObjectKey,
        data: impl Into<Bytes>,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
    ) -> Result<ObjectMeta> {
        self.route()
            .put(key, data.into(), mime, rule, ttl_hint_hours)
    }

    /// Reads an object through a (round-robin chosen) engine.
    pub fn get(&self, key: &ObjectKey) -> Result<Bytes> {
        self.route().get(key)
    }

    /// Deletes an object through a (round-robin chosen) engine.
    pub fn delete(&self, key: &ObjectKey) -> Result<()> {
        self.route().delete(key)
    }

    /// Lists a container through a (round-robin chosen) engine.
    pub fn list(&self, container: &str) -> Vec<ObjectKey> {
        self.route().list(container)
    }

    /// Advances simulated time: charges storage at every provider, retries
    /// postponed deletes, flushes the log-aggregation pipeline into the
    /// statistics tables, garbage-collects the statistics footprint (class
    /// sample caps, rollup retention), drains the durability-repair queue
    /// under the configured migration budget and runs anti-entropy across
    /// the database replicas.
    pub fn tick(&self, now: SimTime) {
        self.infra.advance_clock(now);
        let stats = self.infra.statistics(DatacenterId::new(0));
        self.aggregator.flush(&stats, self.infra.next_timestamp());
        stats.gc_statistics(self.infra.current_period());
        if let Ok(report) = drain_repair_queue(
            &self.engines[0],
            &self.infra,
            &self.repair_placement,
            &self.repair_budget,
            now,
        ) {
            *self.last_repair_drain.lock() = report;
        }
        self.infra.database().anti_entropy();
    }

    /// Outcome of the repair-queue drain of the most recent [`Self::tick`].
    pub fn last_repair_drain(&self) -> RepairDrainReport {
        *self.last_repair_drain.lock()
    }

    /// Runs one periodic optimisation procedure (§III-A3), class-centric:
    /// one placement search per `(class, rule)` group of the accessed set,
    /// migrations batched under the configured budget. Pass `force = true`
    /// to re-evaluate every group even if its class trend did not change
    /// (used right after the provider catalog changes).
    pub fn run_optimization(&self, force: bool) -> OptimizationReport {
        self.optimizer.run(&self.engines, &self.infra, force)
    }

    /// Runs the pre-class per-object optimisation sweep — the differential
    /// baseline (one trend detection + search per accessed object, full
    /// accessed-set scan).
    pub fn run_optimization_per_object(&self, force: bool) -> OptimizationReport {
        self.optimizer
            .run_per_object(&self.engines, &self.infra, force)
    }

    /// Row keys whose beneficial migrations the budget pushed to a later
    /// cycle.
    pub fn deferred_migrations(&self) -> usize {
        self.optimizer.deferred_backlog()
    }

    /// Total amount billed by all providers so far.
    pub fn total_cost(&self) -> Money {
        self.infra.total_cost()
    }

    /// Hit/miss counters of the deployment-wide placement decision cache.
    pub fn placement_cache_stats(&self) -> crate::placement_cache::PlacementCacheStats {
        self.infra.placement_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalia_types::reliability::Reliability;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "t",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            0.5,
        )
    }

    #[test]
    fn builder_defaults_produce_working_cluster() {
        let cluster = ScaliaCluster::builder().build();
        assert_eq!(cluster.engine_count(), 4);
        assert_eq!(cluster.caches().len(), 2);
        assert_eq!(cluster.infra().catalog().len(), 5);
    }

    #[test]
    fn requests_round_robin_across_engines_and_datacenters() {
        let cluster = ScaliaCluster::builder()
            .datacenters(2)
            .engines_per_datacenter(1)
            .build();
        let key = ObjectKey::new("c", "k");
        cluster
            .put(
                &key,
                vec![1u8; 10_000],
                "application/octet-stream",
                rule(),
                None,
            )
            .unwrap();
        // Consecutive reads hit different engines (different datacenters) and
        // both succeed.
        assert_eq!(cluster.get(&key).unwrap().len(), 10_000);
        assert_eq!(cluster.get(&key).unwrap().len(), 10_000);
    }

    #[test]
    fn tick_flushes_access_statistics() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "hot");
        cluster
            .put(&key, vec![1u8; 5_000], "image/png", rule(), None)
            .unwrap();
        for _ in 0..5 {
            cluster.get(&key).unwrap();
        }
        cluster.tick(SimTime::from_hours(1));
        let history = cluster.engine(0).history(&key);
        assert_eq!(history.len(), 1);
        assert_eq!(history.records()[0].reads, 5);
        assert_eq!(history.records()[0].writes, 1);
    }

    #[test]
    fn total_cost_grows_with_time() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "big");
        cluster
            .put(
                &key,
                vec![0u8; 2_000_000],
                "application/x-tar",
                rule(),
                None,
            )
            .unwrap();
        let right_after = cluster.total_cost();
        cluster.tick(SimTime::from_hours(720));
        assert!(cluster.total_cost() > right_after);
    }

    #[test]
    fn same_class_writes_share_one_placement_search() {
        let cluster = ScaliaCluster::builder().build();
        // Twenty same-size PNGs: same rule, same usage class, same catalog
        // version ⇒ one search, nineteen cache hits.
        for i in 0..20 {
            let key = ObjectKey::new("photos", format!("img{i}.png"));
            cluster
                .put(&key, vec![7u8; 300_000], "image/png", rule(), None)
                .unwrap();
        }
        let stats = cluster.placement_cache_stats();
        assert_eq!(stats.misses, 1, "one search for the whole class");
        assert_eq!(stats.hits, 19, "remaining writes must be served from cache");
    }

    #[test]
    fn catalog_change_invalidates_placement_cache() {
        let cluster = ScaliaCluster::builder().build();
        let put = |name: &str| {
            cluster
                .put(
                    &ObjectKey::new("c", name),
                    vec![1u8; 100_000],
                    "image/png",
                    rule(),
                    None,
                )
                .unwrap()
        };
        put("a.png");
        put("b.png");
        assert_eq!(cluster.placement_cache_stats().misses, 1);
        // A new provider bumps the catalog version: the next same-class
        // write must re-run the search (and may adopt the new provider).
        cluster
            .infra()
            .register_provider(scalia_providers::catalog::cheapstor(
                scalia_types::ids::ProviderId::new(0),
            ));
        put("c.png");
        assert_eq!(
            cluster.placement_cache_stats().misses,
            2,
            "catalog mutation must invalidate the cache"
        );
    }

    #[test]
    fn zero_cache_cluster_still_serves_reads() {
        let cluster = ScaliaCluster::builder()
            .cache_capacity(ByteSize::ZERO)
            .build();
        let key = ObjectKey::new("c", "k");
        cluster
            .put(&key, vec![2u8; 40_000], "image/gif", rule(), None)
            .unwrap();
        assert_eq!(cluster.get(&key).unwrap().len(), 40_000);
        let (hits, _misses) = cluster.caches()[0].stats();
        assert_eq!(hits, 0);
    }
}
