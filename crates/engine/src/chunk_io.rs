//! Unified parallel chunk I/O: every provider round-trip of the data path.
//!
//! Scalia stores an object as `n` erasure-coded chunks on `n` providers and
//! serves it back from the best `m` of them (§III-D). Until this layer
//! existed, each life-cycle hand-rolled its own sequential provider loop —
//! a put summed `n` round-trips, a get summed `m`, and no scenario could
//! observe a slow provider at all. All four call sites (write, read, delete
//! and the repair/migration path through
//! [`crate::engine::Engine::replace_placement`]) now route through this
//! module, which fans transfers out over the work-stealing pool:
//!
//! * [`write_chunks`] — **parallel upload**, one task per chunk, with
//!   abort-on-first-hard-failure: the first provider error flips an abort
//!   flag (uploads not yet started are skipped), every chunk that did land
//!   is rolled back (deleted, or queued as a postponed delete if the
//!   provider is unreachable), and the failing provider is reported to the
//!   failure detector and returned to the caller so the write can be
//!   re-placed on the remaining providers.
//! * [`fetch_chunks`] — **hedged first-`m`-of-`n` read**: the best `m`
//!   providers are raced concurrently — ranked by expected read latency
//!   (the *observed* summary once enough samples exist, the advertised
//!   model otherwise), with the read-price order breaking latency ties —
//!   so a provider that has recently been slow is demoted to parity rank
//!   while a latency-free catalog keeps the seed's exact price order.
//!   The moment any ranked fetch errors, or exceeds its hedge deadline —
//!   the provider's observed p95 once warm, a multiple of its modelled
//!   latency until then ([`hedge_deadline_us`]) — the next-ranked parity
//!   provider is promoted into the race. The read returns as soon as `m`
//!   chunks are in hand — a straggler keeps running detached on the pool
//!   and simply finds its result unneeded. Every outcome feeds the failure
//!   detector (§III-D3) and every success feeds the provider's
//!   observed-latency window, closing the adaptation loop.
//! * [`write_chunks_tolerant`] — the **degraded-capable upload**: every
//!   chunk is attempted (no abort-on-first-failure) and the write survives
//!   with any `k ≥ m` of its `n` chunks; the failed providers come back to
//!   the caller, which decides whether the surviving subset clears the
//!   rule's availability floor (the degraded-write fallback of the engine's
//!   put path).
//! * [`delete_chunks`] — **parallel delete** with the postponed-delete
//!   semantics for unreachable providers.
//! * [`upload_encoded`] / [`upload_encoded_tolerant`] / [`fetch_stripe`] /
//!   [`fetch_range`] — the **stripe-granular face** of the same machinery,
//!   used by the staged streaming pipeline
//!   ([`crate::streaming`]): an upload takes an already-encoded stripe (so
//!   the pipeline can encode stripe k+1 while stripe k is in flight) and a
//!   per-stripe chunk-key salt, and a range read decodes only the byte
//!   window it needs from the hedged `m`-of-`n` fetch of a single stripe —
//!   the rollback, postponed-delete and failure-detector semantics above
//!   apply per stripe, unchanged.
//!
//! # Virtual time, real time
//!
//! Latencies are *virtual* (deterministic microseconds from each provider's
//! [`scalia_providers::latency::LatencyModel`], driven by the simulated
//! clock), so the hedging timeline — completion times, deadline overruns,
//! parity promotions and the recorded makespans — is exactly reproducible
//! at any pool size, including the 1-worker degenerate case. When a store
//! opts into real sleeping
//! ([`scalia_providers::backend::SimulatedStore::set_real_sleep`], used by
//! the `chunk_io` bench), the same controller hedges by wall clock: it
//! parks on a condvar and promotes parity when a ranked fetch blows its
//! real deadline, so a stalled provider cannot hold the read hostage.
//!
//! The object-level makespans (critical path of the fan-out, not the sum of
//! round-trips) are recorded into the deployment-wide per-operation latency
//! histograms ([`Infrastructure::io_latency_snapshot`]).

use crate::infra::Infrastructure;
use bytes::Bytes;
use rayon::prelude::*;
use scalia_core::cost::{cheapest_read_providers, chunk_bytes_for};
use scalia_core::placement::Placement;
use scalia_erasure::codec::{
    decode_object, decode_object_range, encode_object, Chunk, EncodedObject,
};
use scalia_providers::backend::StoreOp;
use scalia_providers::descriptor::ProviderDescriptor;
use scalia_providers::latency::LatencyModel;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::object::{ChunkLocation, ObjectMeta, StripingMeta};
use scalia_types::size::ByteSize;
use scalia_types::ErasureParams;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hedging policy of the first-`m`-of-`n` read.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Fallback: a ranked fetch is hedged once its latency exceeds this
    /// multiple of the provider's modelled (jitter-free) latency for the
    /// chunk size — used until the provider has enough *observed* samples.
    pub deadline_multiplier: u32,
    /// Floor of the hedge deadline, in virtual microseconds, so zero-latency
    /// catalogs (the default) never hedge on latency — only on errors.
    pub min_deadline_us: u64,
    /// Observed percentile used as the hedge deadline once enough samples
    /// exist: a fetch that outlives the provider's recent p`observed_percentile`
    /// gets its parity promoted. Tighter than the modelled fallback for any
    /// healthy provider (p95 ≈ 1.1× nominal vs 3× nominal), so deadlines
    /// *tighten* as observations accumulate.
    pub observed_percentile: f64,
    /// Minimum observed samples (in the provider's sliding window) before
    /// the observed deadline replaces the modelled fallback. Set to
    /// `u64::MAX` to pin the pre-adaptive fixed-deadline behaviour
    /// (baselines and A/B tests).
    pub min_observed_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            deadline_multiplier: 3,
            min_deadline_us: 2_000,
            observed_percentile: crate::infra::OBSERVED_PERCENTILE,
            min_observed_samples: crate::infra::OBSERVED_MIN_SAMPLES,
        }
    }
}

impl HedgeConfig {
    /// The default policy with adaptation disabled: deadlines stay at the
    /// fixed modelled multiple forever (the PR 3 behaviour), regardless of
    /// observations. Used as the baseline the adaptive policy is measured
    /// against.
    pub fn fixed_deadline() -> Self {
        HedgeConfig {
            min_observed_samples: u64::MAX,
            ..HedgeConfig::default()
        }
    }
}

/// The hedge deadline of one fetch from `provider`: the provider's observed
/// read-latency percentile when at least `config.min_observed_samples`
/// recent samples exist, otherwise `config.deadline_multiplier ×` the
/// modelled latency for the chunk size — floored by `min_deadline_us`
/// either way.
pub fn hedge_deadline_us(
    infra: &Infrastructure,
    provider: ProviderId,
    latency: &LatencyModel,
    chunk_bytes: u64,
    config: &HedgeConfig,
) -> u64 {
    infra
        .observed_read_percentile_with_min(
            provider,
            config.observed_percentile,
            config.min_observed_samples,
        )
        .unwrap_or_else(|| {
            latency
                .expected_us(chunk_bytes)
                .saturating_mul(config.deadline_multiplier as u64)
        })
        .max(config.min_deadline_us)
}

/// The upload hedge deadline of one chunk-PUT to `provider`:
/// `deadline_multiplier ×` the provider's *observed* write-latency
/// percentile once warm (recorded by every successful upload into the same
/// `DecayingHistogram` observation loop the read path uses), the same
/// multiple of the modelled latency until then. An upload that outlives
/// this deadline is treated as a failed-slow provider: the chunk is rolled
/// back and the write re-placed on the remaining providers, so a provider
/// stalling anomalously on PUTs cannot hold a write hostage.
///
/// Unlike the read hedge — where outliving the raw p95 merely races an
/// extra parity fetch — a write overrun aborts real work, so the deadline
/// keeps the multiplier headroom above the p95: healthy jitter (by
/// definition ~5 % of round-trips land past the p95) must never fail a
/// write, while a multi-second stall on a ~30 ms provider still trips it.
/// The adaptation is in the *base*: a provider whose observed writes are
/// far from its advertised model gets a deadline grounded in reality.
pub fn write_hedge_deadline_us(
    infra: &Infrastructure,
    provider: ProviderId,
    latency: &LatencyModel,
    chunk_bytes: u64,
    config: &HedgeConfig,
) -> u64 {
    infra
        .observed_write_percentile_with_min(
            provider,
            config.observed_percentile,
            config.min_observed_samples,
        )
        .unwrap_or_else(|| latency.expected_us(chunk_bytes))
        .saturating_mul(config.deadline_multiplier as u64)
        .max(config.min_deadline_us)
}

/// A failed parallel upload: which provider broke the write, and how.
/// Already-uploaded chunks have been rolled back by the time this is
/// returned; the caller decides whether to re-place and retry.
#[derive(Debug)]
pub struct WriteFailure {
    /// The provider whose upload failed (`None` when the failure was not
    /// attributable to one provider, e.g. an encoding error).
    pub provider: Option<ProviderId>,
    /// The underlying error.
    pub error: ScaliaError,
}

impl From<WriteFailure> for ScaliaError {
    fn from(failure: WriteFailure) -> ScaliaError {
        failure.error
    }
}

// ---------------------------------------------------------------------------
// Parallel upload
// ---------------------------------------------------------------------------

enum UploadOutcome {
    Uploaded {
        provider: ProviderId,
        chunk_key: String,
        index: u32,
        us: u64,
    },
    Failed {
        provider: ProviderId,
        error: ScaliaError,
    },
    /// Skipped because another upload had already failed.
    Aborted,
}

/// Encodes `data` for `placement` and uploads one chunk per provider, all
/// in parallel on the pool, under the default upload-hedge policy. See
/// [`write_chunks_with`].
pub fn write_chunks(
    infra: &Infrastructure,
    placement: &Placement,
    skey: &str,
    data: &Bytes,
) -> std::result::Result<StripingMeta, WriteFailure> {
    write_chunks_with(infra, placement, skey, data, &HedgeConfig::default())
}

/// Encodes `data` for `placement` and uploads one chunk per provider, all
/// in parallel on the pool. On the first hard failure the remaining uploads
/// are aborted, every chunk that already landed is deleted again (or queued
/// as a postponed delete), and the failing provider is reported to the
/// failure detector and returned in the [`WriteFailure`]. An upload
/// exceeding its hedge deadline ([`write_hedge_deadline_us`] — the observed
/// PUT p95 once warm, a modelled multiple until then) counts as a failure
/// of its provider: the landed chunk is rolled back so the caller can
/// re-place the write without the straggler.
pub fn write_chunks_with(
    infra: &Infrastructure,
    placement: &Placement,
    skey: &str,
    data: &Bytes,
    config: &HedgeConfig,
) -> std::result::Result<StripingMeta, WriteFailure> {
    let params = placement.erasure_params();
    let encoded = encode_object(data, params).map_err(|error| WriteFailure {
        provider: None,
        error,
    })?;
    upload_encoded(infra, placement, skey, &encoded, config)
}

/// Uploads an already-encoded object's chunks, one per provider of
/// `placement`, in parallel with abort-on-first-failure and rollback —
/// the upload half of [`write_chunks_with`], split out so the streaming
/// pipeline can encode stripe `k+1` while stripe `k`'s chunks are in
/// flight.
pub fn upload_encoded(
    infra: &Infrastructure,
    placement: &Placement,
    skey: &str,
    encoded: &EncodedObject,
    config: &HedgeConfig,
) -> std::result::Result<StripingMeta, WriteFailure> {
    let jobs: Vec<(&Chunk, &ProviderDescriptor)> = encoded
        .chunks
        .iter()
        .zip(placement.providers.iter())
        .collect();

    let abort = AtomicBool::new(false);
    let outcomes: Vec<UploadOutcome> = jobs
        .par_iter()
        .map(|(chunk, provider)| upload_one(infra, chunk, provider, skey, Some(&abort), config))
        .collect();

    let mut failure: Option<(ProviderId, ScaliaError)> = None;
    let mut uploaded: Vec<(ProviderId, String)> = Vec::new();
    let mut locations: Vec<ChunkLocation> = Vec::with_capacity(jobs.len());
    let mut makespan_us = 0u64;
    for outcome in outcomes {
        match outcome {
            UploadOutcome::Uploaded {
                provider,
                chunk_key,
                index,
                us,
            } => {
                uploaded.push((provider, chunk_key));
                locations.push(ChunkLocation { index, provider });
                makespan_us = makespan_us.max(us);
            }
            UploadOutcome::Failed { provider, error } => {
                // Keep the first (lowest-index) failure: par_iter preserves
                // input order, so this is deterministic.
                if failure.is_none() {
                    failure = Some((provider, error));
                }
            }
            UploadOutcome::Aborted => {}
        }
    }

    if let Some((provider, error)) = failure {
        // Roll back whatever landed, in parallel too.
        uploaded.par_iter().for_each(|(provider, chunk_key)| {
            delete_or_postpone(infra, *provider, chunk_key);
        });
        return Err(WriteFailure {
            provider: Some(provider),
            error,
        });
    }

    // The put's virtual makespan is the slowest chunk upload — the critical
    // path of the fan-out, not the sum of the round-trips.
    infra.record_io_latency(StoreOp::Put, makespan_us);
    Ok(StripingMeta::single(
        locations,
        placement.m,
        skey.to_string(),
    ))
}

fn upload_one(
    infra: &Infrastructure,
    chunk: &Chunk,
    provider: &ProviderDescriptor,
    skey: &str,
    abort: Option<&AtomicBool>,
    config: &HedgeConfig,
) -> UploadOutcome {
    if abort.is_some_and(|a| a.load(Ordering::SeqCst)) {
        return UploadOutcome::Aborted;
    }
    let chunk_key = format!("{skey}.{}", chunk.index);
    let Some(backend) = infra.backend(provider.id) else {
        if let Some(abort) = abort {
            abort.store(true, Ordering::SeqCst);
        }
        return UploadOutcome::Failed {
            provider: provider.id,
            error: ScaliaError::ProviderUnavailable(provider.id),
        };
    };
    let deadline_us = write_hedge_deadline_us(
        infra,
        provider.id,
        &provider.latency,
        chunk.data.len() as u64,
        config,
    );
    let (result, us) = backend.timed_put(&chunk_key, chunk.data.clone());
    match result {
        Ok(()) if us > deadline_us => {
            // The upload landed but blew its hedge deadline: a provider
            // stalling far beyond its recent (or modelled) write behaviour.
            // Waiting it out made this write's makespan `us` already; treat
            // it as a failed-slow provider so the caller re-places the
            // *next* attempt without it. The landed chunk is rolled back —
            // the striping that will be committed must not reference it.
            // The overrun itself still feeds the observation window (it is
            // a real, successful round-trip — evidence the deadline should
            // widen if this is the provider's new normal).
            infra.record_provider_write_latency(provider.id, us);
            if let Some(abort) = abort {
                abort.store(true, Ordering::SeqCst);
            }
            let error = ScaliaError::Internal(format!(
                "chunk PUT to provider {} took {us}µs, past its {deadline_us}µs hedge deadline",
                provider.id
            ));
            infra.report_provider_failure(provider.id, &error);
            delete_or_postpone(infra, provider.id, &chunk_key);
            UploadOutcome::Failed {
                provider: provider.id,
                error,
            }
        }
        Ok(()) => {
            infra.report_provider_success(provider.id);
            infra.record_provider_write_latency(provider.id, us);
            UploadOutcome::Uploaded {
                provider: provider.id,
                chunk_key,
                index: chunk.index,
                us,
            }
        }
        Err(error) => {
            if let Some(abort) = abort {
                abort.store(true, Ordering::SeqCst);
            }
            infra.report_provider_failure(provider.id, &error);
            UploadOutcome::Failed {
                provider: provider.id,
                error,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tolerant (degraded-capable) upload
// ---------------------------------------------------------------------------

/// A tolerant parallel upload's outcome: the striping over every chunk that
/// landed (original erasure indices preserved) plus the providers whose
/// chunk did not.
#[derive(Debug)]
pub struct PartialWrite {
    /// Striping over the surviving chunks only. Degraded iff
    /// `striping.chunks.len()` is below the placement width.
    pub striping: StripingMeta,
    /// Providers whose chunk did not land, with the error each produced.
    pub failed: Vec<(ProviderId, ScaliaError)>,
}

/// Encodes `data` for `placement` and uploads one chunk per provider in
/// parallel **without** abort-on-first-failure: every upload is attempted
/// and the write survives as long as at least `m` chunks land. This is the
/// degraded-write fallback of [`crate::engine::Engine::put`] — once
/// re-placement is exhausted, the caller checks the surviving subset
/// against the rule's availability floor and, if it passes, commits the
/// partial striping with a durability debt for the repair queue to
/// backfill. If fewer than `m` chunks land, the landed ones are rolled back
/// and the first failure is returned, exactly like [`write_chunks_with`].
pub fn write_chunks_tolerant(
    infra: &Infrastructure,
    placement: &Placement,
    skey: &str,
    data: &Bytes,
    config: &HedgeConfig,
) -> std::result::Result<PartialWrite, WriteFailure> {
    let params = placement.erasure_params();
    let encoded = encode_object(data, params).map_err(|error| WriteFailure {
        provider: None,
        error,
    })?;
    upload_encoded_tolerant(infra, placement, skey, &encoded, config)
}

/// The upload half of [`write_chunks_tolerant`] for an already-encoded
/// object — the streaming pipeline's degraded-landing fallback per stripe.
pub fn upload_encoded_tolerant(
    infra: &Infrastructure,
    placement: &Placement,
    skey: &str,
    encoded: &EncodedObject,
    config: &HedgeConfig,
) -> std::result::Result<PartialWrite, WriteFailure> {
    let jobs: Vec<(&Chunk, &ProviderDescriptor)> = encoded
        .chunks
        .iter()
        .zip(placement.providers.iter())
        .collect();

    let outcomes: Vec<UploadOutcome> = jobs
        .par_iter()
        .map(|(chunk, provider)| upload_one(infra, chunk, provider, skey, None, config))
        .collect();

    let mut uploaded: Vec<(ProviderId, String)> = Vec::new();
    let mut locations: Vec<ChunkLocation> = Vec::with_capacity(jobs.len());
    let mut failed: Vec<(ProviderId, ScaliaError)> = Vec::new();
    let mut makespan_us = 0u64;
    for outcome in outcomes {
        match outcome {
            UploadOutcome::Uploaded {
                provider,
                chunk_key,
                index,
                us,
            } => {
                uploaded.push((provider, chunk_key));
                locations.push(ChunkLocation { index, provider });
                makespan_us = makespan_us.max(us);
            }
            UploadOutcome::Failed { provider, error } => failed.push((provider, error)),
            UploadOutcome::Aborted => {}
        }
    }

    if locations.len() < placement.m.max(1) as usize {
        // Not even a readable object: roll back and report like the strict
        // path, naming the first (lowest-index) failing provider.
        uploaded.par_iter().for_each(|(provider, chunk_key)| {
            delete_or_postpone(infra, *provider, chunk_key);
        });
        let (provider, error) = failed
            .into_iter()
            .next()
            .expect("fewer than m survivors implies at least one failure");
        return Err(WriteFailure {
            provider: Some(provider),
            error,
        });
    }

    infra.record_io_latency(StoreOp::Put, makespan_us);
    Ok(PartialWrite {
        striping: StripingMeta::single(locations, placement.m, skey.to_string()),
        failed,
    })
}

// ---------------------------------------------------------------------------
// Parallel delete
// ---------------------------------------------------------------------------

/// Deletes every chunk of a striping in parallel, postponing chunks whose
/// provider is unreachable ("the deletion of the chunk residing at a faulty
/// provider is postponed until the provider recovers", §III-D3). Striped
/// objects delete every stripe's chunks in one parallel fan-out.
pub fn delete_chunks(infra: &Infrastructure, striping: &StripingMeta) {
    let refs = striping.all_chunk_refs();
    if refs.is_empty() {
        return;
    }
    let latencies: Vec<u64> = refs
        .par_iter()
        .map(|(provider, chunk_key)| delete_or_postpone(infra, *provider, chunk_key))
        .collect();
    let makespan = latencies.into_iter().max().unwrap_or(0);
    infra.record_io_latency(StoreOp::Delete, makespan);
}

/// Deletes one chunk, falling back to a postponed delete when the provider
/// is down or the delete fails. Returns the virtual latency paid.
fn delete_or_postpone(infra: &Infrastructure, provider: ProviderId, chunk_key: &str) -> u64 {
    let attempted = infra
        .backend(provider)
        .filter(|b| b.is_up())
        .map(|b| b.timed_delete(chunk_key));
    match attempted {
        Some((Ok(()), us)) => us,
        Some((Err(_), us)) => {
            infra.postpone_delete(provider, chunk_key.to_string());
            us
        }
        None => {
            infra.postpone_delete(provider, chunk_key.to_string());
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Hedged first-m-of-n read
// ---------------------------------------------------------------------------

/// One fetch task's report back to the controller.
struct FetchReply {
    slot: usize,
    result: Result<Bytes>,
    us: u64,
}

/// The rendezvous between detached fetch tasks and the controller.
struct FetchBoard {
    replies: Mutex<Vec<FetchReply>>,
    cv: Condvar,
}

impl FetchBoard {
    fn new() -> Self {
        FetchBoard {
            replies: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, reply: FetchReply) {
        self.replies.lock().unwrap().push(reply);
        self.cv.notify_all();
    }

    fn take(&self) -> Vec<FetchReply> {
        std::mem::take(&mut *self.replies.lock().unwrap())
    }

    /// Parks briefly unless a reply is already waiting. The short timeout
    /// bounds the reaction time to wall-clock hedge deadlines (real-sleep
    /// mode) without busy-spinning.
    fn wait_brief(&self) {
        let guard = self.replies.lock().unwrap();
        if guard.is_empty() {
            let _ = self
                .cv
                .wait_timeout(guard, Duration::from_micros(500))
                .unwrap();
        }
    }
}

/// One launched fetch.
struct Slot {
    candidate: usize,
    virt_start_us: u64,
    deadline_us: u64,
    real_start: Instant,
    hedged: bool,
    done: bool,
}

/// One ranked fetch candidate: where the chunk lives and how fast its
/// provider is modelled to answer (all `Copy` — the descriptor itself is
/// not needed past ranking).
#[derive(Clone, Copy)]
struct Candidate {
    location: ChunkLocation,
    latency: LatencyModel,
}

struct HedgedRead<'a> {
    infra: &'a Arc<Infrastructure>,
    striping: &'a StripingMeta,
    config: &'a HedgeConfig,
    chunk_bytes: u64,
    /// Chunk locations and their latency models, cheapest-read first.
    candidates: Vec<Candidate>,
    board: Arc<FetchBoard>,
    slots: Vec<Slot>,
    next_candidate: usize,
    /// Successful fetches: (virtual completion time, chunk).
    oks: Vec<(u64, Chunk)>,
    /// Latest virtual event time observed, used to timestamp late launches.
    virtual_frontier_us: u64,
    /// `true` once any involved store really sleeps its latency — enables
    /// wall-clock hedging and disables inline helping (helping could adopt
    /// a sleeping fetch and stall the controller).
    any_real: bool,
}

impl<'a> HedgedRead<'a> {
    /// Launches the next-ranked candidate (skipping providers with no
    /// backend, which are reported as hard failures). The fetch task itself
    /// reports its outcome to the failure detector, so a straggler that
    /// errors *after* the read already returned still accumulates failure
    /// evidence (the controller only folds replies into the timeline).
    fn launch_next(&mut self, virt_start_us: u64) {
        while self.next_candidate < self.candidates.len() {
            let candidate = self.candidates[self.next_candidate];
            self.next_candidate += 1;
            let provider = candidate.location.provider;
            let Some(backend) = self.infra.backend(provider) else {
                self.infra
                    .report_provider_failure(provider, &ScaliaError::ProviderUnavailable(provider));
                continue;
            };
            self.any_real |= backend.real_sleep_enabled();
            let deadline_us = hedge_deadline_us(
                self.infra,
                provider,
                &candidate.latency,
                self.chunk_bytes,
                self.config,
            );
            let slot = self.slots.len();
            self.slots.push(Slot {
                candidate: self.next_candidate - 1,
                virt_start_us,
                deadline_us,
                real_start: Instant::now(),
                hedged: false,
                done: false,
            });
            let chunk_key = self.striping.chunk_key(candidate.location.index);
            let board = self.board.clone();
            let infra = Arc::clone(self.infra);
            rayon::spawn(move || {
                let (result, us) = backend.timed_get(&chunk_key);
                match &result {
                    Ok(_) => {
                        infra.report_provider_success(provider);
                        // Feed the observed-latency summary the placement
                        // ranking and future hedge deadlines adapt to. A
                        // straggler that lands after the read returned
                        // still counts — slow providers cannot hide behind
                        // the hedge.
                        infra.record_provider_read_latency(provider, us);
                    }
                    // §III-D3: feed the failure detector instead of
                    // silently skipping the provider. Error round-trips pay
                    // only the base RTT and carry no payload, so they do
                    // NOT feed the latency summary — a refusing provider
                    // must not look fast.
                    Err(error) => infra.report_provider_failure(provider, error),
                }
                board.push(FetchReply { slot, result, us });
            });
            return;
        }
    }

    /// Folds one reply into the hedging timeline (the detector was already
    /// fed by the fetch task itself).
    fn process(&mut self, reply: FetchReply) {
        let (candidate, virt_start_us, deadline_us, hedged) = {
            let slot = &mut self.slots[reply.slot];
            slot.done = true;
            (
                slot.candidate,
                slot.virt_start_us,
                slot.deadline_us,
                slot.hedged,
            )
        };
        match reply.result {
            Ok(bytes) => {
                let completion = virt_start_us + reply.us;
                self.virtual_frontier_us = self.virtual_frontier_us.max(completion);
                let index = self.candidates[candidate].location.index;
                self.oks.push((completion, Chunk::new(index, bytes)));
                // The fetch succeeded but blew its deadline: in the hedged
                // timeline a parity fetch was already launched at the
                // deadline — launch it now (virtual mode learns about the
                // overrun only when the reply lands; real mode has usually
                // hedged already via the wall clock, `hedged` dedupes).
                if reply.us > deadline_us && !hedged {
                    self.slots[reply.slot].hedged = true;
                    self.launch_next(virt_start_us + deadline_us);
                }
            }
            Err(_) => {
                // Promote the next-ranked parity provider at the moment the
                // error was observed — unless this slot was already hedged
                // past its wall-clock deadline, in which case its
                // replacement is in flight and a second promotion would
                // burn (and bill) a candidate for nothing.
                let failed_at = virt_start_us + reply.us;
                self.virtual_frontier_us = self.virtual_frontier_us.max(failed_at);
                if !hedged {
                    self.slots[reply.slot].hedged = true;
                    self.launch_next(failed_at);
                }
            }
        }
    }

    /// Promotes parity for every in-flight fetch that exceeded its hedge
    /// deadline in *wall-clock* time (only meaningful when stores really
    /// sleep their latency).
    fn hedge_overdue_by_wall_clock(&mut self) {
        for slot_index in 0..self.slots.len() {
            let (due, virt_hedge_start) = {
                let slot = &self.slots[slot_index];
                let overdue = !slot.done
                    && !slot.hedged
                    && slot.real_start.elapsed() >= Duration::from_micros(slot.deadline_us);
                (overdue, slot.virt_start_us + slot.deadline_us)
            };
            if due {
                self.slots[slot_index].hedged = true;
                self.launch_next(virt_hedge_start);
            }
        }
    }

    fn run(mut self, m: usize) -> Result<Vec<Chunk>> {
        // Race the cheapest m providers.
        for _ in 0..m {
            self.launch_next(0);
        }
        // Virtual mode buffers replies until the in-flight generation has
        // fully quiesced, then folds them in *virtual-completion* order
        // (ties by slot index). Hedge promotions — which consume ranked
        // candidates and stamp their launch times — thereby replay the
        // simulated timeline deterministically, independent of which worker
        // thread happened to report first. Real-sleep mode keeps arrival
        // order: there the wall clock is the race.
        let mut pending: Vec<FetchReply> = Vec::new();
        loop {
            let replies = self.board.take();
            if self.any_real {
                // Flushes any replies buffered before a late launch flipped
                // the read into wall-clock mode.
                for reply in pending.drain(..).chain(replies) {
                    self.process(reply);
                }
            } else {
                pending.extend(replies);
            }
            let undone = self.slots.iter().filter(|s| !s.done).count();
            if !self.any_real {
                let in_flight = undone - pending.len();
                if in_flight > 0 {
                    if !rayon::yield_now() {
                        // Help the pool drain fetch tasks (essential when
                        // the controller runs *inside* a 1-worker pool);
                        // park briefly only when there is nothing to steal.
                        self.board.wait_brief();
                    }
                    continue;
                }
                if !pending.is_empty() {
                    pending.sort_by_key(|reply| {
                        (self.slots[reply.slot].virt_start_us + reply.us, reply.slot)
                    });
                    for reply in std::mem::take(&mut pending) {
                        self.process(reply);
                    }
                    continue; // processing may have launched hedges
                }
                // Quiesced with nothing buffered: the hedge timeline is
                // settled and the winners are the m earliest *virtual*
                // completions — otherwise a virtually-slow fetch would
                // "win" merely by being processed first.
                if self.oks.len() >= m {
                    break;
                }
                if self.next_candidate < self.candidates.len() {
                    let frontier = self.virtual_frontier_us;
                    self.launch_next(frontier);
                    continue;
                }
                break; // nothing in flight, nothing left to try
            }
            // Wall-clock mode: the first m arrivals win and stragglers stay
            // detached.
            if self.oks.len() >= m {
                break;
            }
            if undone == 0 {
                if self.next_candidate < self.candidates.len() {
                    let frontier = self.virtual_frontier_us;
                    self.launch_next(frontier);
                    continue;
                }
                break;
            }
            // Promote parity past overdue deadlines, then park until the
            // next reply (or the short timeout).
            self.hedge_overdue_by_wall_clock();
            self.board.wait_brief();
        }

        if self.oks.len() < m {
            return Err(ScaliaError::NotEnoughChunks {
                available: self.oks.len(),
                required: m,
            });
        }
        // First m completions of the hedged timeline win; the read's
        // makespan is the slowest of the winners.
        self.oks.sort_by_key(|(completion, _)| *completion);
        let makespan = self.oks[m - 1].0;
        self.infra.record_io_latency(StoreOp::Get, makespan);
        Ok(self
            .oks
            .into_iter()
            .take(m)
            .map(|(_, chunk)| chunk)
            .collect())
    }
}

/// Fetches any `m` of the striping's `n` chunks with a hedged race over the
/// cheapest providers (see the module docs for the full protocol). Records
/// the read's virtual makespan and feeds every per-provider outcome into
/// the failure detector.
pub fn fetch_chunks(
    infra: &Arc<Infrastructure>,
    striping: &StripingMeta,
    object_size: ByteSize,
    config: &HedgeConfig,
) -> Result<Vec<Chunk>> {
    let m = striping.m.max(1) as usize;
    // Rank chunk locations by the read cost of their provider first (the
    // seed's order, so billing ties break exactly as before), then by
    // *expected read latency* — the observed summary when the provider has
    // enough recent samples, the advertised model otherwise. The sort is
    // stable, so on a latency-free catalog (every key 0) the fan-out is
    // still the static price order; once observations accumulate, a
    // slow-but-cheap provider drops to parity rank and the fast providers
    // are raced first. The descriptors (one unavoidable clone each, made by
    // the catalog lookup) live only as long as the ranking; the race itself
    // needs just the `Copy` location + latency model.
    let mut locations: Vec<ChunkLocation> = Vec::with_capacity(striping.chunks.len());
    let mut descriptors: Vec<ProviderDescriptor> = Vec::with_capacity(striping.chunks.len());
    for location in &striping.chunks {
        if let Some(descriptor) = infra.catalog().get(location.provider) {
            locations.push(*location);
            descriptors.push(descriptor);
        }
    }
    let chunk_gb = object_size.as_gb() / striping.m.max(1) as f64;
    let chunk_bytes = chunk_bytes_for(object_size, striping.m);
    let mut order = cheapest_read_providers(&descriptors, locations.len() as u32, chunk_gb);
    // Precompute the latency keys (one lock acquisition each, none held
    // while sorting) — the sample floor is the hedging policy's, so
    // ranking and deadlines trust observations under the same conditions.
    let latency_keys: Vec<u64> = locations
        .iter()
        .zip(descriptors.iter())
        .map(|(location, descriptor)| {
            infra
                .observed_read_percentile_with_min(
                    location.provider,
                    config.observed_percentile,
                    config.min_observed_samples,
                )
                .unwrap_or_else(|| descriptor.latency.expected_us(chunk_bytes))
        })
        .collect();
    order.sort_by_key(|&i| latency_keys[i]);
    let candidates: Vec<Candidate> = order
        .into_iter()
        .map(|i| Candidate {
            location: locations[i],
            latency: descriptors[i].latency,
        })
        .collect();

    let read = HedgedRead {
        infra,
        striping,
        config,
        chunk_bytes,
        candidates,
        board: Arc::new(FetchBoard::new()),
        slots: Vec::new(),
        next_candidate: 0,
        oks: Vec::new(),
        virtual_frontier_us: 0,
        any_real: false,
    };
    let chunks = read.run(m)?;
    Ok(chunks)
}

/// Fetches chunks with [`fetch_chunks`] and reassembles the object,
/// tolerating up to `n − m` failed or straggling providers. Striped objects
/// fetch and decode stripe by stripe — each stripe runs its own hedged
/// `m`-of-`n` race and is checksum-verified — so the transient working set
/// beyond the output buffer stays O(stripe), never O(object).
pub fn fetch_and_reassemble(
    infra: &Arc<Infrastructure>,
    meta: &ObjectMeta,
    config: &HedgeConfig,
) -> Result<Bytes> {
    let striping = &meta.striping;
    let Some(map) = &striping.stripes else {
        // `code_width()`, not `chunks.len()`: a degraded striping keeps the
        // surviving chunks' original erasure indices, and the decoder must
        // see the width those indices were encoded under.
        let params = ErasureParams::new(striping.m, striping.code_width())
            .ok_or_else(|| ScaliaError::Internal("invalid striping metadata".into()))?;
        let chunks = fetch_chunks(infra, striping, meta.size, config)?;
        return decode_object(&chunks, params, meta.size.bytes() as usize);
    };
    let mut out = Vec::with_capacity(map.total_len() as usize);
    for i in 0..map.stripes.len() {
        let stripe = fetch_stripe(infra, striping, i, config)?;
        out.extend_from_slice(&stripe);
    }
    Ok(Bytes::from(out))
}

/// Fetches and decodes one stripe of a striped object with the hedged
/// `m`-of-`n` race, verifying the stripe's recorded plaintext checksum.
pub fn fetch_stripe(
    infra: &Arc<Infrastructure>,
    striping: &StripingMeta,
    index: usize,
    config: &HedgeConfig,
) -> Result<Bytes> {
    let map = striping
        .stripes
        .as_ref()
        .ok_or_else(|| ScaliaError::Internal("fetch_stripe on single-stripe object".into()))?;
    let stripe = &map.stripes[index];
    let view = striping.stripe_view(index);
    let params = ErasureParams::new(view.m, view.code_width())
        .ok_or_else(|| ScaliaError::Internal("invalid stripe metadata".into()))?;
    let chunks = fetch_chunks(infra, &view, ByteSize::from_bytes(stripe.len), config)?;
    let bytes = decode_object(&chunks, params, stripe.len as usize)?;
    if scalia_types::md5::md5_hex(&bytes) != stripe.checksum {
        return Err(ScaliaError::DecodeFailed(format!(
            "stripe {index} of {} failed its checksum",
            striping.skey
        )));
    }
    Ok(bytes)
}

/// Fetches only the chunks needed to serve the byte range
/// `[offset, offset + len)` of an object: for a striped object just the
/// covering stripes (each still a hedged `m`-of-`n` race); for a classic
/// single-stripe object its one chunk set, decoded through the systematic
/// range fast path. The result equals the same slice of a full read,
/// clamped to the object's end — an empty or past-EOF range is empty bytes.
pub fn fetch_range(
    infra: &Arc<Infrastructure>,
    meta: &ObjectMeta,
    offset: u64,
    len: u64,
    config: &HedgeConfig,
) -> Result<Bytes> {
    let size = meta.size.bytes();
    let end = offset.saturating_add(len).min(size);
    if offset >= end {
        return Ok(Bytes::new());
    }
    let striping = &meta.striping;
    let Some(map) = &striping.stripes else {
        // The single stripe IS the covering stripe: fetch its m cheapest
        // chunks and decode only the requested range.
        let params = ErasureParams::new(striping.m, striping.code_width())
            .ok_or_else(|| ScaliaError::Internal("invalid striping metadata".into()))?;
        let chunks = fetch_chunks(infra, striping, meta.size, config)?;
        return decode_object_range(
            &chunks,
            params,
            size as usize,
            offset as usize,
            (end - offset) as usize,
        );
    };
    let mut out = Vec::with_capacity((end - offset) as usize);
    for i in map.covering(offset, end) {
        let stripe = &map.stripes[i];
        let stripe_start = map.stripe_offset(i);
        let from = offset.max(stripe_start) - stripe_start;
        let to = (end - stripe_start).min(stripe.len);
        if from == 0 && to == stripe.len {
            // Whole stripe needed: decode + checksum-verify it.
            out.extend_from_slice(&fetch_stripe(infra, striping, i, config)?);
        } else {
            let view = striping.stripe_view(i);
            let params = ErasureParams::new(view.m, view.code_width())
                .ok_or_else(|| ScaliaError::Internal("invalid stripe metadata".into()))?;
            let chunks = fetch_chunks(infra, &view, ByteSize::from_bytes(stripe.len), config)?;
            let bytes = decode_object_range(
                &chunks,
                params,
                stripe.len as usize,
                from as usize,
                (to - from) as usize,
            )?;
            out.extend_from_slice(&bytes);
        }
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalia_providers::backend::ObjectStore;
    use scalia_providers::catalog::ProviderCatalog;
    use scalia_types::time::Duration as SimDuration;

    fn infra() -> Arc<Infrastructure> {
        Infrastructure::new(ProviderCatalog::paper_catalog(), 1, SimDuration::HOUR)
    }

    fn placement_of(infra: &Infrastructure, count: usize, m: u32) -> Placement {
        Placement {
            providers: infra.catalog().all().into_iter().take(count).collect(),
            m,
        }
    }

    fn stored_total(infra: &Infrastructure) -> u64 {
        infra
            .backends()
            .iter()
            .map(|b| b.stored_bytes().bytes())
            .sum()
    }

    #[test]
    fn parallel_write_places_one_chunk_per_provider() {
        let infra = infra();
        let placement = placement_of(&infra, 3, 2);
        let data = Bytes::from(vec![5u8; 90_000]);
        let striping = write_chunks(&infra, &placement, "skey-w", &data).unwrap();
        assert_eq!(striping.chunks.len(), 3);
        assert_eq!(striping.m, 2);
        // Locations come back in chunk-index order regardless of which
        // upload finished first.
        for (i, location) in striping.chunks.iter().enumerate() {
            assert_eq!(location.index, i as u32);
            assert_eq!(location.provider, placement.providers[i].id);
        }
        // One put recorded at the object level.
        assert_eq!(infra.io_latency_snapshot(StoreOp::Put).count, 1);
        // And the payload reassembles.
        let chunks = fetch_chunks(
            &infra,
            &striping,
            ByteSize::from_bytes(90_000),
            &HedgeConfig::default(),
        )
        .unwrap();
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn failed_upload_rolls_back_landed_chunks_and_names_the_provider() {
        let infra = infra();
        let placement = placement_of(&infra, 3, 2);
        let victim = placement.providers[1].id;
        infra.backend(victim).unwrap().set_down(true);

        let data = Bytes::from(vec![7u8; 60_000]);
        let failure = write_chunks(&infra, &placement, "skey-x", &data).unwrap_err();
        assert_eq!(failure.provider, Some(victim));
        assert!(matches!(
            failure.error,
            ScaliaError::ProviderUnavailable(p) if p == victim
        ));
        assert_eq!(
            stored_total(&infra),
            0,
            "chunks that landed before the failure must be rolled back"
        );
        // §III-D3: the hard failure marked the provider unavailable.
        assert!(!infra.catalog().is_available(victim));
    }

    #[test]
    fn tolerant_write_survives_a_down_provider_and_reassembles() {
        let infra = infra();
        let placement = placement_of(&infra, 4, 2);
        let victim = placement.providers[2].id;
        infra.backend(victim).unwrap().set_down(true);

        let data = Bytes::from(vec![6u8; 80_000]);
        let partial =
            write_chunks_tolerant(&infra, &placement, "skey-t", &data, &HedgeConfig::default())
                .unwrap();
        assert_eq!(partial.striping.chunks.len(), 3, "3 of 4 chunks landed");
        assert_eq!(partial.failed.len(), 1);
        assert_eq!(partial.failed[0].0, victim);
        assert!(partial.striping.chunks.iter().all(|c| c.provider != victim));
        // The degraded striping reads back through the normal hedged path.
        let chunks = fetch_chunks(
            &infra,
            &partial.striping,
            ByteSize::from_bytes(80_000),
            &HedgeConfig::default(),
        )
        .unwrap();
        assert_eq!(chunks.len(), 2);

        // With fewer than m survivors the tolerant write rolls back and
        // fails like the strict one.
        for provider in placement.providers.iter().take(3) {
            infra.backend(provider.id).unwrap().set_down(true);
        }
        let err = write_chunks_tolerant(
            &infra,
            &placement,
            "skey-t2",
            &data,
            &HedgeConfig::default(),
        )
        .unwrap_err();
        assert!(err.provider.is_some());
        let last = placement.providers[3].id;
        assert!(
            !infra.backend(last).unwrap().exists("skey-t2.3").unwrap(),
            "the lone surviving chunk must be rolled back"
        );
    }

    #[test]
    fn hedged_read_promotes_parity_past_a_dead_ranked_provider() {
        let infra = infra();
        let placement = placement_of(&infra, 4, 2);
        let data = Bytes::from(vec![9u8; 120_000]);
        let striping = write_chunks(&infra, &placement, "skey-h", &data).unwrap();

        // Kill the cheapest-ranked provider (the one a sequential reader
        // would contact first).
        let descriptors: Vec<ProviderDescriptor> = striping
            .chunks
            .iter()
            .filter_map(|c| infra.catalog().get(c.provider))
            .collect();
        let chunk_gb = ByteSize::from_bytes(120_000).as_gb() / 2.0;
        let ranked = cheapest_read_providers(&descriptors, descriptors.len() as u32, chunk_gb);
        let victim = striping.chunks[ranked[0]].provider;
        infra.backend(victim).unwrap().set_down(true);

        let chunks = fetch_chunks(
            &infra,
            &striping,
            ByteSize::from_bytes(120_000),
            &HedgeConfig::default(),
        )
        .unwrap();
        assert_eq!(chunks.len(), 2);
        assert!(
            chunks.iter().all(|c| c.verify()),
            "fetched chunks must be checksum-exact"
        );
        // The read reported the dead provider to the failure detector.
        assert!(!infra.catalog().is_available(victim));
    }

    #[test]
    fn hedged_read_does_not_wait_out_a_stalled_provider() {
        let infra = infra();
        let placement = placement_of(&infra, 3, 1);
        let data = Bytes::from(vec![3u8; 40_000]);
        let striping = write_chunks(&infra, &placement, "skey-s", &data).unwrap();

        let descriptors: Vec<ProviderDescriptor> = striping
            .chunks
            .iter()
            .filter_map(|c| infra.catalog().get(c.provider))
            .collect();
        let chunk_gb = ByteSize::from_bytes(40_000).as_gb();
        let ranked = cheapest_read_providers(&descriptors, descriptors.len() as u32, chunk_gb);
        let stalled = striping.chunks[ranked[0]].provider;
        let parity = striping.chunks[ranked[1]].provider;

        // The ranked provider limps: 10 virtual seconds per request.
        const STALL_US: u64 = 10_000_000;
        infra.backend(stalled).unwrap().set_stall_us(STALL_US);
        let parity_gets_before = infra
            .backend(parity)
            .unwrap()
            .latency_snapshot(scalia_providers::backend::StoreOp::Get)
            .count;

        let chunks = fetch_chunks(
            &infra,
            &striping,
            ByteSize::from_bytes(40_000),
            &HedgeConfig::default(),
        )
        .unwrap();
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].verify());

        // The hedge promoted the parity provider…
        let parity_gets_after = infra
            .backend(parity)
            .unwrap()
            .latency_snapshot(scalia_providers::backend::StoreOp::Get)
            .count;
        assert!(
            parity_gets_after > parity_gets_before,
            "the parity provider must have been raced"
        );
        // …and the read's virtual makespan beat the stall by a wide margin.
        let read = infra.io_latency_snapshot(StoreOp::Get);
        assert!(read.count >= 1);
        assert!(
            read.max_us < STALL_US / 2,
            "read makespan {}µs must not wait out the {}µs stall",
            read.max_us,
            STALL_US
        );
    }

    #[test]
    fn hedge_deadline_tightens_once_observations_accumulate() {
        use crate::infra::OBSERVED_MIN_SAMPLES;
        let infra = infra();
        let provider = infra.catalog().all()[0].id;
        // A ~30 ms provider with healthy jitter: p95 of real round-trips
        // sits near 1.1× nominal, far under the 3× modelled fallback.
        let model = LatencyModel::new(30, 0, 10, 7);
        let config = HedgeConfig::default();
        let cold = hedge_deadline_us(&infra, provider, &model, 1_000, &config);
        assert_eq!(cold, 3 * 30_000, "cold deadline is the modelled multiple");

        for salt in 0..4 * OBSERVED_MIN_SAMPLES {
            infra.record_provider_read_latency(provider, model.sample_us(1_000, salt));
        }
        let warm = hedge_deadline_us(&infra, provider, &model, 1_000, &config);
        assert!(
            warm < cold && warm >= 30_000 * 9 / 10,
            "warm deadline {warm} must tighten to the observed p95, not below the floor"
        );
        // The fixed-deadline baseline ignores the observations entirely.
        assert_eq!(
            hedge_deadline_us(
                &infra,
                provider,
                &model,
                1_000,
                &HedgeConfig::fixed_deadline()
            ),
            cold
        );
        // And the 2 ms floor still holds for near-instant providers.
        assert_eq!(
            hedge_deadline_us(
                &infra,
                provider,
                &LatencyModel::ZERO,
                0,
                &HedgeConfig::fixed_deadline()
            ),
            2_000
        );
    }

    #[test]
    fn observed_slow_provider_is_demoted_out_of_the_initial_fanout() {
        use crate::infra::OBSERVED_MIN_SAMPLES;
        let infra = infra();
        let placement = placement_of(&infra, 3, 1);
        let data = Bytes::from(vec![8u8; 50_000]);
        let striping = write_chunks(&infra, &placement, "skey-rank", &data).unwrap();

        // The price-ranked first choice develops a bad observed record.
        let chunk_gb = ByteSize::from_bytes(50_000).as_gb();
        let descriptors: Vec<ProviderDescriptor> = striping
            .chunks
            .iter()
            .filter_map(|c| infra.catalog().get(c.provider))
            .collect();
        let ranked = cheapest_read_providers(&descriptors, descriptors.len() as u32, chunk_gb);
        let tainted = striping.chunks[ranked[0]].provider;
        for _ in 0..2 * OBSERVED_MIN_SAMPLES {
            infra.record_provider_read_latency(tainted, 500_000);
        }

        let gets_before = infra
            .backend(tainted)
            .unwrap()
            .latency_snapshot(StoreOp::Get)
            .count;
        let chunks = fetch_chunks(
            &infra,
            &striping,
            ByteSize::from_bytes(50_000),
            &HedgeConfig::default(),
        )
        .unwrap();
        assert_eq!(chunks.len(), 1);
        let gets_after = infra
            .backend(tainted)
            .unwrap()
            .latency_snapshot(StoreOp::Get)
            .count;
        assert_eq!(
            gets_before, gets_after,
            "the observed-slow provider must be demoted to parity rank and never contacted"
        );
    }

    #[test]
    fn read_fails_cleanly_when_too_few_chunks_survive() {
        let infra = infra();
        let placement = placement_of(&infra, 3, 2);
        let data = Bytes::from(vec![1u8; 30_000]);
        let striping = write_chunks(&infra, &placement, "skey-f", &data).unwrap();
        for provider in striping.providers().into_iter().take(2) {
            infra.backend(provider).unwrap().set_down(true);
        }
        let err = fetch_chunks(
            &infra,
            &striping,
            ByteSize::from_bytes(30_000),
            &HedgeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ScaliaError::NotEnoughChunks {
                available: 1,
                required: 2
            }
        ));
    }

    #[test]
    fn parallel_delete_removes_everything_and_postpones_on_outage() {
        let infra = infra();
        let placement = placement_of(&infra, 3, 2);
        let data = Bytes::from(vec![2u8; 45_000]);
        let striping = write_chunks(&infra, &placement, "skey-d", &data).unwrap();
        let victim = striping.chunks[0].provider;
        infra.backend(victim).unwrap().set_down(true);

        delete_chunks(&infra, &striping);
        assert_eq!(infra.pending_delete_count(), 1, "down provider postpones");
        let survivors: u64 = infra
            .backends()
            .iter()
            .filter(|b| b.descriptor().id != victim)
            .map(|b| b.stored_bytes().bytes())
            .sum();
        assert_eq!(survivors, 0, "reachable providers delete immediately");
        assert_eq!(infra.io_latency_snapshot(StoreOp::Delete).count, 1);

        infra.backend(victim).unwrap().set_down(false);
        infra.retry_pending_deletes();
        assert_eq!(stored_total(&infra), 0);
    }
}
