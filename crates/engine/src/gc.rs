//! Orphan-chunk garbage collection.
//!
//! A crash between chunk upload and metadata commit (or between commit and
//! the deferred delete of a deprecated version's chunks) can leave chunk
//! bytes at providers that no surviving metadata references. Those orphans
//! are invisible to reads — the metadata is the only map — but they bill
//! storage forever. [`sweep_orphan_chunks`] reconciles each provider's key
//! space against the union of chunk keys referenced by **any** metadata
//! version on any reachable database node, and deletes the difference.
//!
//! The sweep is safe only on a *quiescent* cluster (no in-flight writes):
//! an upload racing the sweep has chunks at providers before its metadata
//! commits, and the sweep would eat them. Crash recovery is exactly such a
//! moment — the journal has been replayed, no client writes are running —
//! and is the intended call site.

use crate::infra::Infrastructure;
use scalia_providers::backend::ObjectStore;
use scalia_types::object::ObjectMeta;
use std::collections::HashSet;

/// Outcome of one [`sweep_orphan_chunks`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Chunk keys found at reachable providers.
    pub chunks_scanned: usize,
    /// Chunk keys referenced by surviving metadata.
    pub chunks_referenced: usize,
    /// Orphan chunks deleted.
    pub orphans_deleted: usize,
    /// Providers skipped because their backend was unreachable.
    pub providers_skipped: usize,
}

/// Deletes every provider chunk that no metadata version references.
///
/// Every version of every object's `meta` column on every up node counts as
/// a reference — deprecated-but-unpruned versions keep their chunks until
/// the prune lands, so the sweep never races MVCC. Down providers are
/// skipped (their keys cannot be listed) and reported; re-run the sweep
/// when they recover.
pub fn sweep_orphan_chunks(infra: &Infrastructure) -> GcReport {
    let mut report = GcReport::default();

    // The union of referenced chunk keys across all reachable nodes: nodes
    // may briefly diverge (anti-entropy pending), and a chunk referenced by
    // *any* replica must survive.
    let mut referenced: HashSet<String> = HashSet::new();
    for node in infra.database().nodes() {
        if !node.is_up() {
            continue;
        }
        for (_, row) in node.snapshot() {
            let Some(cells) = row.get("meta") else {
                continue;
            };
            for cell in cells {
                let Ok(meta) = serde_json::from_value::<ObjectMeta>(cell.value.clone()) else {
                    continue;
                };
                // `all_chunk_keys`, not the top-level chunk list: a striped
                // object's chunks live under per-stripe storage keys and its
                // top-level list is empty — enumerating only the latter
                // would make the sweep eat every striped object.
                for key in meta.striping.all_chunk_keys() {
                    referenced.insert(key);
                }
            }
        }
    }
    report.chunks_referenced = referenced.len();

    for backend in infra.backends() {
        let Ok(keys) = backend.list("") else {
            report.providers_skipped += 1;
            continue;
        };
        report.chunks_scanned += keys.len();
        for key in keys {
            if !referenced.contains(&key) && backend.delete(&key).is_ok() {
                report.orphans_deleted += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ScaliaCluster;
    use bytes::Bytes;
    use scalia_providers::backend::ObjectStore;
    use scalia_types::object::ObjectKey;
    use scalia_types::reliability::Reliability;
    use scalia_types::rules::StorageRule;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "gc",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            0.5,
        )
    }

    #[test]
    fn sweep_removes_unreferenced_chunks_and_keeps_referenced_ones() {
        let cluster = ScaliaCluster::builder().build();
        let infra = cluster.infra().clone();
        let key = ObjectKey::new("c", "kept.bin");
        cluster
            .put(&key, vec![7u8; 100_000], "application/x-tar", rule(), None)
            .unwrap();

        // Plant orphans: chunk-shaped keys no metadata references.
        let backends = infra.backends();
        backends[0]
            .put("deadbeef-orphan.0", Bytes::from(vec![1u8; 64]))
            .unwrap();
        backends[1]
            .put("deadbeef-orphan.1", Bytes::from(vec![2u8; 64]))
            .unwrap();

        let report = sweep_orphan_chunks(&infra);
        assert_eq!(report.orphans_deleted, 2);
        assert_eq!(report.providers_skipped, 0);
        assert!(report.chunks_referenced >= 1);
        assert!(!backends[0].exists("deadbeef-orphan.0").unwrap());

        // The object survives the sweep intact.
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 100_000);

        // A second sweep finds nothing.
        assert_eq!(sweep_orphan_chunks(&infra).orphans_deleted, 0);
    }

    #[test]
    fn sweep_skips_down_providers() {
        let cluster = ScaliaCluster::builder().build();
        let infra = cluster.infra().clone();
        let victim = infra.backends()[0].provider_id();
        infra.backend(victim).unwrap().set_down(true);
        let report = sweep_orphan_chunks(&infra);
        assert_eq!(report.providers_skipped, 1);
    }
}
