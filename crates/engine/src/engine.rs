//! The stateless Scalia engine.
//!
//! An [`Engine`] is the component a client request lands on. It implements
//! the write, read and delete life-cycles of §III-D:
//!
//! * **write** — classify the object, predict its usage (from its class
//!   statistics when it has no history), compute the best provider set
//!   (Algorithm 1), erasure-code the payload, store one chunk per provider
//!   under `skey = MD5(container | key | UUID)`, write the metadata version
//!   to the database, clean up deprecated versions (MVCC), and invalidate
//!   the caches of every datacenter;
//! * **read** — serve from the local cache if possible, otherwise read the
//!   metadata, race the cheapest `m` providers with a hedged fetch
//!   (promoting parity providers past errors and stragglers), reassemble,
//!   populate the cache;
//! * **delete** — remove the chunks (postponing deletes to unreachable
//!   providers), fold the object's lifetime and mean usage into its class
//!   statistics, and drop the metadata.
//!
//! Large objects take the **streaming data path** instead of the
//! whole-object write above: [`Engine::put`] routes payloads past the
//! streaming threshold through the staged stripe pipeline in
//! [`crate::streaming`] (encode stripe k+1 while stripe k's chunks are in
//! flight, O(stripe) transient buffering), the same pipeline backs the
//! explicit multipart API ([`Engine::begin_put`] → `put_part` →
//! `complete_put`), and [`Engine::get_range`] serves byte ranges by
//! fetching only the stripes that cover the requested window.
//!
//! Engines are stateless: everything they touch lives in the shared
//! [`Infrastructure`], so adding engines scales the deployment linearly.
//! Every provider round-trip goes through the parallel chunk-I/O layer
//! ([`crate::chunk_io`]): puts and deletes fan out one task per chunk, and
//! put/get latency scales with the slowest provider instead of summing
//! round-trips.

use crate::cache::Cache;
use crate::chunk_io::{self, HedgeConfig};
use crate::infra::Infrastructure;
use bytes::Bytes;
use scalia_core::classify::ObjectClass;
use scalia_core::cost::PredictedUsage;
use scalia_core::placement::{Placement, PlacementEngine};
use scalia_metastore::journal::JournalOp;
use scalia_metastore::logagg::{AccessKind, AccessLogRecord, LogAgent};
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::{DatacenterId, EngineId, ProviderId};
use scalia_types::object::{ObjectKey, ObjectMeta, ObjectVersionId, StripingMeta};
use scalia_types::rules::StorageRule;
use scalia_types::size::ByteSize;
use scalia_types::stats::AccessHistory;
use serde_json::json;
use std::sync::Arc;

/// Default decision period, in sampling periods, for freshly written objects
/// whose class has no statistics yet (24 hourly periods = 1 day).
pub const DEFAULT_DECISION_PERIODS: usize = 24;

/// Bound on place-and-write attempts: a write runs at most this many
/// parallel uploads, i.e. it survives up to `WRITE_ATTEMPTS − 1`
/// provider-side upload failures before the error is surfaced (§III-D3's
/// mark-unavailable-and-retry, made finite).
pub const WRITE_ATTEMPTS: usize = 3;

/// A stateless Scalia engine.
pub struct Engine {
    id: EngineId,
    datacenter: DatacenterId,
    infra: Arc<Infrastructure>,
    local_cache: Arc<Cache>,
    all_caches: Vec<Arc<Cache>>,
    log_agent: Arc<LogAgent>,
    placement: PlacementEngine,
}

impl Engine {
    /// Creates an engine.
    ///
    /// `all_caches` must contain the cache of every datacenter (including
    /// this engine's own) so writes can invalidate them all.
    pub fn new(
        id: EngineId,
        datacenter: DatacenterId,
        infra: Arc<Infrastructure>,
        local_cache: Arc<Cache>,
        all_caches: Vec<Arc<Cache>>,
        log_agent: Arc<LogAgent>,
        placement: PlacementEngine,
    ) -> Self {
        Engine {
            id,
            datacenter,
            infra,
            local_cache,
            all_caches,
            log_agent,
            placement,
        }
    }

    /// The engine's identifier.
    pub fn id(&self) -> EngineId {
        self.id
    }

    /// The datacenter hosting this engine.
    pub fn datacenter(&self) -> DatacenterId {
        self.datacenter
    }

    /// The engine's log agent (drained by the datacenter's log aggregator).
    pub fn log_agent(&self) -> &Arc<LogAgent> {
        &self.log_agent
    }

    /// The shared infrastructure handle.
    pub fn infra(&self) -> &Arc<Infrastructure> {
        &self.infra
    }

    /// This datacenter's cache (the one local reads are served from).
    pub(crate) fn local_cache(&self) -> &Cache {
        &self.local_cache
    }

    // ------------------------------------------------------------------
    // Write
    // ------------------------------------------------------------------

    /// Stores (or overwrites) an object.
    ///
    /// Payloads above the streaming threshold
    /// ([`Infrastructure::streaming_threshold_bytes`]) are routed through
    /// the staged stripe pipeline ([`crate::streaming`]): the payload is cut
    /// into fixed-size stripes, stripe `k + 1` is encoded while stripe `k`'s
    /// chunks are in flight, and the pipeline's transient buffering stays
    /// O(stripe). Smaller payloads take the classic single-stripe path,
    /// whose on-provider layout is bit-identical to every prior release.
    pub fn put(
        &self,
        key: &ObjectKey,
        data: Bytes,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
    ) -> Result<ObjectMeta> {
        if data.len() as u64 > self.infra.streaming_threshold_bytes() {
            return self.put_streaming(key, data, mime, rule, ttl_hint_hours);
        }
        self.put_single(key, data, mime, rule, ttl_hint_hours)
    }

    /// Predicts the object's usage over the default decision period: the
    /// class statistics when available (Fig. 6), storage-only otherwise,
    /// with the optimisation horizon bounded by the TTL hint. Shared by the
    /// classic and streaming write paths so both price placements
    /// identically.
    pub(crate) fn predict_usage(
        &self,
        class: &ObjectClass,
        size: ByteSize,
        ttl_hint_hours: Option<f64>,
    ) -> PredictedUsage {
        let stats = self.infra.statistics(self.datacenter);
        let period_hours = self.infra.sampling_period().as_hours();
        let mut usage = match stats.mean_class_usage(class.id()) {
            Some(mean) => PredictedUsage::from_class_usage(
                size,
                &mean,
                DEFAULT_DECISION_PERIODS,
                period_hours,
            ),
            None => {
                PredictedUsage::storage_only(size, DEFAULT_DECISION_PERIODS as f64 * period_hours)
            }
        };
        if let Some(ttl) = ttl_hint_hours {
            usage.duration_hours = usage.duration_hours.min(ttl.max(period_hours));
        }
        usage
    }

    /// The classic single-stripe write path: everything encoded and
    /// uploaded as one erasure group. [`crate::streaming`]'s tail-fallback
    /// calls this directly (routing through [`Self::put`] again could
    /// recurse when the configured stripe size exceeds the threshold).
    pub(crate) fn put_single(
        &self,
        key: &ObjectKey,
        data: Bytes,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
    ) -> Result<ObjectMeta> {
        let size = ByteSize::from_bytes(data.len() as u64);
        let class = ObjectClass::of(mime, size);
        let usage = self.predict_usage(&class, size, ttl_hint_hours);

        // Encode and store the chunks (re-placing and retrying, bounded, if
        // a provider fails mid-write; landing *degraded* — k ≥ m chunks
        // that still clear the rule's availability floor — when
        // re-placement is exhausted).
        let (version, striping, degraded_from) =
            self.place_and_write(key, &rule, &class, &usage, &data)?;

        // Chaos crash point: chunks are uploaded but nothing is committed.
        // The write is not acked; the orphaned chunks belong to the GC
        // sweep.
        self.infra.crash_point("put::after-upload")?;

        let meta = ObjectMeta {
            key: key.clone(),
            version,
            mime: mime.to_string(),
            size,
            checksum: scalia_types::md5::md5_hex(&data),
            rule,
            written_at: self.infra.now(),
            ttl_hint_hours,
            striping,
        };

        // Serialise the commit against concurrent puts/deletes/migrations
        // of the same object so MVCC pruning always sees a settled latest
        // version. The cache invalidation happens under the same lock: a
        // reader's epoch-gated populate (see `Engine::get`) also runs under
        // the row lock, so commit + invalidation are atomic with respect to
        // it — a deprecated payload can never be inserted after the
        // invalidation that covers it. Chunk uploads (above) and
        // deprecated-chunk GC (below) stay outside the lock — no provider
        // round-trip happens under it.
        // A degraded landing records its durability debt — and the repair
        // queue entry that will backfill it to full width — atomically with
        // the metadata commit.
        let debt = degraded_from.map(|want| {
            serde_json::json!({
                "reason": "degraded-write",
                "have": meta.striping.chunks.len(),
                "want": want,
            })
        });
        let deprecated = {
            let _commit = self.infra.lock_row_commit(&meta.row_key());
            let deprecated = self.commit_metadata_with_debt(&meta, debt)?;
            self.invalidate_everywhere(&meta.row_key());
            deprecated
        };
        // Chaos crash point: the commit is durable but the deprecated-chunk
        // GC below never runs — the orphan sweep reconciles the leak.
        self.infra.crash_point("put::after-commit")?;
        for striping in &deprecated {
            self.delete_chunks(striping);
        }
        self.record_class_with_retry(&key.row_key(), class.id());

        // Log the write for the statistics pipeline.
        self.log_access(key, AccessKind::Write, size, size);
        Ok(meta)
    }

    /// Records the object's class membership in the statistics store,
    /// retrying transient failures. The recording must not fail the put —
    /// the object is already durably committed and readable — but silently
    /// dropping it would strand the object outside its class group: the
    /// class-centric optimiser sweeps members *by class row*, so an
    /// unrecorded object is never reconsidered for migration. Each attempt
    /// is observable via [`Infrastructure::class_record_counters`]; the
    /// chaos label `put::record-class` injects per-attempt failures.
    pub(crate) fn record_class_with_retry(&self, row_key: &str, class_id: &str) {
        /// Total attempts per put (1 try + 2 retries).
        const CLASS_RECORD_ATTEMPTS: usize = 3;
        let stats = self.infra.statistics(self.datacenter);
        for attempt in 0..CLASS_RECORD_ATTEMPTS {
            let result = self.infra.crash_point("put::record-class").and_then(|()| {
                stats.record_object_class(row_key, class_id, self.infra.next_timestamp())
            });
            match result {
                Ok(()) => return,
                Err(_) if attempt + 1 < CLASS_RECORD_ATTEMPTS => {
                    self.infra.note_class_record_retry();
                }
                Err(_) => self.infra.note_class_record_failure(),
            }
        }
    }

    /// Places and uploads an object's chunks, retrying — bounded by
    /// [`WRITE_ATTEMPTS`] — when a provider fails mid-write, as §III-D3
    /// prescribes: the parallel upload in [`chunk_io::write_chunks`] rolls
    /// back the chunks that already landed and reports the failed provider
    /// to the failure detector (a hard unreachability error marks it
    /// unavailable in the catalog immediately); the write is then re-placed
    /// over the remaining providers and retried.
    ///
    /// When re-placement is **exhausted** — attempts used up, or the search
    /// itself finds no feasible set — the write falls back to a *degraded*
    /// landing ([`Self::degraded_write`]) on the last placement tried:
    /// every chunk is attempted tolerantly and the result is accepted iff
    /// `k ≥ m` chunks landed *and* the surviving providers still clear the
    /// rule's availability floor. Returns the version the successful
    /// attempt was stored under, its striping, and — for a degraded landing
    /// — the full width the repair queue must backfill to.
    fn place_and_write(
        &self,
        key: &ObjectKey,
        rule: &StorageRule,
        class: &ObjectClass,
        usage: &PredictedUsage,
        data: &Bytes,
    ) -> Result<(ObjectVersionId, StripingMeta, Option<u32>)> {
        let mut excluded: Vec<ProviderId> = Vec::new();
        let mut last_failed: Option<Placement> = None;
        loop {
            let placement = match self.place_excluding(rule, class, usage, &excluded) {
                Ok(placement) => placement,
                Err(place_err) => {
                    // Re-placement found nothing: degrade on the placement
                    // whose upload last failed, if there was one.
                    return match last_failed {
                        Some(placement) => self
                            .degraded_write(key, rule, &placement, data)
                            .ok_or(place_err),
                        None => Err(place_err),
                    };
                }
            };
            // A fresh version — and therefore fresh chunk keys — per
            // attempt: a failed attempt's rollback may have *postponed* a
            // delete (the provider flapped down mid-rollback), and that
            // delete fires unconditionally once the provider recovers. If
            // the retry reused the same keys, it could land a committed
            // chunk exactly where the pending delete will strike.
            let version = self.infra.next_version(&key.row_key());
            let skey = StripingMeta::storage_key(key, version);
            match chunk_io::write_chunks(&self.infra, &placement, &skey, data) {
                Ok(striping) => return Ok((version, striping, None)),
                Err(failure) => match failure.provider {
                    // The failed provider may or may not have tripped the
                    // failure detector (e.g. a full private resource stays
                    // catalog-available); exclude it from the re-placement
                    // search explicitly either way.
                    Some(provider) if excluded.len() + 1 < WRITE_ATTEMPTS => {
                        excluded.push(provider);
                        last_failed = Some(placement);
                    }
                    Some(_) => {
                        // Attempts exhausted: degrade on this placement or
                        // surface the upload error.
                        return self
                            .degraded_write(key, rule, &placement, data)
                            .ok_or(failure.error);
                    }
                    None => return Err(failure.error),
                },
            }
        }
    }

    /// The degraded-write fallback: attempts every chunk of `placement`
    /// tolerantly ([`chunk_io::write_chunks_tolerant`]) and accepts the
    /// partial landing iff at least `m` chunks survive **and** the
    /// surviving provider subset still meets the rule's availability floor.
    /// Returns `None` — with every landed chunk rolled back — when the
    /// landing is not durable enough to acknowledge.
    fn degraded_write(
        &self,
        key: &ObjectKey,
        rule: &StorageRule,
        placement: &Placement,
        data: &Bytes,
    ) -> Option<(ObjectVersionId, StripingMeta, Option<u32>)> {
        let version = self.infra.next_version(&key.row_key());
        let skey = StripingMeta::storage_key(key, version);
        let partial = chunk_io::write_chunks_tolerant(
            &self.infra,
            placement,
            &skey,
            data,
            &HedgeConfig::default(),
        )
        .ok()?;
        let want = placement.providers.len() as u32;
        if partial.striping.chunks.len() as u32 == want {
            // Everything landed after all (the earlier failure was
            // transient): a full-width write, no debt.
            return Some((version, partial.striping, None));
        }
        let surviving: Vec<scalia_providers::descriptor::ProviderDescriptor> = partial
            .striping
            .chunks
            .iter()
            .filter_map(|c| self.infra.catalog().get(c.provider))
            .collect();
        let availability =
            scalia_core::availability::get_availability(&surviving, partial.striping.m);
        if surviving.len() == partial.striping.chunks.len() && availability.meets(rule.availability)
        {
            Some((version, partial.striping, Some(want)))
        } else {
            // Not durable enough to acknowledge: roll the landing back.
            chunk_io::delete_chunks(&self.infra, &partial.striping);
            None
        }
    }

    /// Runs the placement search. The common no-exclusions case is routed
    /// through the shared placement decision cache (keyed by rule + exact
    /// object class + usage bucket + catalog version), so a burst of
    /// same-class writes prices one search, not one per object; retries
    /// with excluded providers search directly — the cache cannot express
    /// an ad-hoc exclusion.
    pub(crate) fn place_excluding(
        &self,
        rule: &StorageRule,
        class: &ObjectClass,
        usage: &PredictedUsage,
        excluded: &[ProviderId],
    ) -> Result<Placement> {
        if excluded.is_empty() {
            let decision =
                self.infra
                    .best_placement_cached(&self.placement, rule, class.id(), usage)?;
            return Ok(decision.placement);
        }
        let providers: Vec<_> = self
            .infra
            .catalog()
            .available()
            .into_iter()
            .filter(|p| !excluded.contains(&p.id))
            .collect();
        let decision = self.placement.best_placement(rule, usage, &providers)?;
        Ok(decision.placement)
    }

    /// Writes the metadata version and prunes deprecated versions from the
    /// database. Returns the deprecated versions' stripings: the caller must
    /// garbage-collect their chunks with [`Self::delete_chunks`] **after**
    /// releasing the row commit lock — provider round-trips must not happen
    /// under the lock.
    #[must_use = "the returned stripings' chunks must be garbage-collected"]
    fn commit_metadata(&self, meta: &ObjectMeta) -> Result<Vec<StripingMeta>> {
        self.commit_metadata_with_debt(meta, None)
    }

    /// [`Self::commit_metadata`], optionally recording a durability debt.
    /// The whole commit — metadata, optimiser digest, container index,
    /// debt column and repair-queue entry (or debt clearance), version
    /// prunes — is one journaled transaction on the replicated store, so a
    /// crash at any point replays to either the old or the new placement,
    /// never a torn mixture.
    #[must_use = "the returned stripings' chunks must be garbage-collected"]
    pub(crate) fn commit_metadata_with_debt(
        &self,
        meta: &ObjectMeta,
        debt: Option<serde_json::Value>,
    ) -> Result<Vec<StripingMeta>> {
        let row_key = meta.row_key();
        let value = serde_json::to_value(meta)
            .map_err(|e| ScaliaError::Internal(format!("serialize metadata: {e}")))?;
        let timestamp = self.infra.next_timestamp();
        let mut ops = vec![
            JournalOp::Put {
                row_key: row_key.clone(),
                column: "meta".to_string(),
                value,
                timestamp,
            },
            // The optimiser digest: the compact slice of the metadata the
            // class-centric sweep needs per member (rule fingerprint,
            // current placement, size, lifetime hints). Reading it costs a
            // fraction of deserialising full metadata, so a steady-state
            // optimisation cycle never touches the `meta` column of members
            // that stay put.
            JournalOp::Put {
                row_key: row_key.clone(),
                column: "opt".to_string(),
                value: crate::optimizer::optimizer_digest(meta),
                timestamp,
            },
            // Container index for LIST.
            JournalOp::Put {
                row_key: format!("container:{}", meta.key.container),
                column: meta.key.key.clone(),
                value: json!(true),
                timestamp,
            },
        ];
        match debt {
            Some(debt_value) => {
                ops.push(JournalOp::Put {
                    row_key: row_key.clone(),
                    column: "debt".to_string(),
                    value: debt_value,
                    timestamp,
                });
                ops.push(JournalOp::Put {
                    row_key: crate::repair::queue_row_key(&row_key),
                    column: "item".to_string(),
                    value: crate::repair::queue_item(&meta.key, "degraded-write"),
                    timestamp,
                });
                ops.push(JournalOp::Prune {
                    row_key: crate::repair::queue_row_key(&row_key),
                    column: "item".to_string(),
                });
            }
            // A full-width commit settles any outstanding debt.
            None => ops.push(JournalOp::DeleteColumn {
                row_key: row_key.clone(),
                column: "debt".to_string(),
            }),
        }
        // MVCC: the freshest version wins; deprecated versions are removed
        // from the database here, their chunks by the caller. `meta` must
        // be the FIRST prune: the transaction's pruned-cell set
        // deduplicates on timestamps, and a version's meta/opt/debt cells
        // share one — insertion order makes the meta cell the survivor.
        ops.push(JournalOp::Prune {
            row_key: row_key.clone(),
            column: "meta".to_string(),
        });
        ops.push(JournalOp::Prune {
            row_key: row_key.clone(),
            column: "opt".to_string(),
        });
        let pruned = self.infra.database().transaction(ops)?;
        Ok(pruned
            .into_iter()
            .filter_map(|cell| serde_json::from_value::<ObjectMeta>(cell.value).ok())
            .filter(|old_meta| old_meta.version != meta.version)
            .map(|old_meta| old_meta.striping)
            .collect())
    }

    // ------------------------------------------------------------------
    // Read
    // ------------------------------------------------------------------

    /// Reads an object, serving it from the cache when possible.
    ///
    /// A read races MVCC garbage collection: a concurrent overwrite may
    /// prune the version whose chunks are being fetched. The read therefore
    /// retries a bounded number of times with freshly-read metadata before
    /// giving up — each retry observes a strictly newer version, so the loop
    /// cannot live-lock.
    pub fn get(&self, key: &ObjectKey) -> Result<Bytes> {
        let row_key = key.row_key();
        if let Some(data) = self.local_cache.get(&row_key) {
            self.log_access(
                key,
                AccessKind::Read,
                ByteSize::from_bytes(data.len() as u64),
                ByteSize::from_bytes(data.len() as u64),
            );
            return Ok(data);
        }

        const READ_ATTEMPTS: usize = 3;
        let mut last_err = ScaliaError::ObjectNotFound(key.clone());
        for _ in 0..READ_ATTEMPTS {
            // Snapshot the cache's invalidation epoch BEFORE the metadata
            // read: any write committed after this point bumps it.
            let epoch = self.local_cache.read_epoch(&row_key);
            let meta = self.read_metadata(key)?;
            match self.fetch_and_reassemble(&meta) {
                Ok(data) => {
                    self.populate_cache_if_unchanged(&row_key, &data, epoch);
                    self.log_access(key, AccessKind::Read, meta.size, meta.size);
                    return Ok(data);
                }
                // Chunks vanished or failed mid-read: the version was likely
                // deprecated by a concurrent writer. Re-read and retry.
                Err(err @ (ScaliaError::NotEnoughChunks { .. } | ScaliaError::DecodeFailed(_))) => {
                    last_err = err;
                }
                Err(err) => return Err(err),
            }
        }
        Err(last_err)
    }

    /// Populates the local cache with a freshly-reassembled payload — but
    /// only if no write invalidated the key since the `epoch` snapshot
    /// taken before the metadata read.
    ///
    /// Without the gate, a slow reader could insert pre-overwrite bytes
    /// *after* the writer's invalidation, and the stale entry would then be
    /// served until the next write of the same key. Writers commit and
    /// invalidate atomically under the row commit lock; taking the same
    /// lock here means an unchanged epoch proves no commit has deprecated
    /// the payload — closing the race **without** the extra metadata read
    /// per uncached get the previous revalidate-by-re-reading scheme paid.
    fn populate_cache_if_unchanged(&self, row_key: &str, data: &Bytes, epoch: u64) {
        let _commit = self.infra.lock_row_commit(row_key);
        self.local_cache.put_if_epoch(row_key, data.clone(), epoch);
    }

    /// Reads and deserialises the current metadata version of an object.
    pub fn read_metadata(&self, key: &ObjectKey) -> Result<ObjectMeta> {
        let row_key = key.row_key();
        let cell = self
            .infra
            .database()
            .get_latest(self.datacenter, &row_key, "meta")
            .ok_or_else(|| ScaliaError::ObjectNotFound(key.clone()))?;
        serde_json::from_value(cell.value)
            .map_err(|e| ScaliaError::Internal(format!("deserialize metadata: {e}")))
    }

    /// Fetches chunks with a hedged race over the cheapest `m` providers
    /// and reassembles the object, tolerating up to `n − m` failed or
    /// straggling providers. Provider errors feed the failure detector
    /// (§III-D3); a fetch that exceeds its hedge deadline has the
    /// next-ranked parity provider promoted into the race (see
    /// [`chunk_io::fetch_chunks`]).
    pub fn fetch_and_reassemble(&self, meta: &ObjectMeta) -> Result<Bytes> {
        chunk_io::fetch_and_reassemble(&self.infra, meta, &HedgeConfig::default())
    }

    /// Lists the keys currently stored in a container.
    ///
    /// The container-index row is read through the replicated merged-row
    /// path ([`scalia_metastore::replication::ReplicatedStore::get_row_merged`]):
    /// per column the freshest cell across **all** up replicas wins. Reading
    /// a single node — as this method once did — served whatever replica
    /// happened to be first, and a node that was down during writes and came
    /// back before anti-entropy replayed its hints would silently drop
    /// recent puts from (or resurrect recent deletes into) the listing.
    pub fn list(&self, container: &str) -> Vec<ObjectKey> {
        let row = format!("container:{container}");
        self.infra
            .database()
            .get_row_merged(&row)
            .into_iter()
            .filter(|(_, cell)| cell.value == json!(true))
            .map(|(column, _)| ObjectKey::new(container, column))
            .collect()
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Deletes an object: removes its chunks (postponing deletes on
    /// unreachable providers), folds its lifetime and usage into its class
    /// statistics, and drops its metadata.
    pub fn delete(&self, key: &ObjectKey) -> Result<()> {
        let row_key = key.row_key();
        // The metadata mutation runs under the row commit lock (a migration
        // committing between our read and the row drop would otherwise leak
        // its freshly-written chunks); the provider-facing chunk deletion
        // happens after release, like every other call site.
        let commit_guard = self.infra.lock_row_commit(&row_key);
        let meta = self.read_metadata(key)?;
        let stats = self.infra.statistics(self.datacenter);
        let timestamp = self.infra.next_timestamp();

        // Fold the object's observed lifetime and mean per-period usage into
        // its class statistics before dropping its rows.
        let lifetime_hours = self.infra.now().since(meta.written_at).as_hours();
        let class = ObjectClass::of(&meta.mime, meta.size);
        stats
            .record_class_lifetime(class.id(), lifetime_hours, timestamp)
            .ok();
        let history = stats.history(&row_key, scalia_types::stats::DEFAULT_HISTORY_LEN);
        if !history.is_empty() {
            let mean = history
                .mean_usage_over_last(history.len(), self.infra.sampling_period().as_hours());
            stats.record_class_usage(class.id(), &mean, timestamp).ok();
        }

        self.infra.database().delete_row(&row_key);
        self.infra.database().put(
            &format!("container:{}", key.container),
            &key.key,
            json!(false),
            self.infra.next_timestamp(),
        )?;
        stats.delete_object_stats(&row_key);
        // Invalidate under the commit lock — atomic with the metadata drop,
        // so an in-flight reader's epoch-gated populate cannot resurrect
        // the deleted payload.
        self.invalidate_everywhere(&row_key);
        drop(commit_guard);

        // Chunk deletion (provider round-trips) after the metadata is gone:
        // in-flight readers of the old version already tolerate vanishing
        // chunks, and unreachable providers get a postponed delete.
        self.delete_chunks(&meta.striping);
        Ok(())
    }

    /// Deletes every chunk of a striping in parallel, postponing chunks
    /// whose provider is unreachable ("the deletion of the chunk residing
    /// at a faulty provider is postponed until the provider recovers").
    pub fn delete_chunks(&self, striping: &StripingMeta) {
        chunk_io::delete_chunks(&self.infra, striping);
    }

    // ------------------------------------------------------------------
    // Re-placement (used by the periodic optimiser and active repair)
    // ------------------------------------------------------------------

    /// Moves an object to a new placement: reassembles it, re-encodes it for
    /// the new `(m, n)`, writes the new chunks, commits the new metadata
    /// version and deletes the old chunks. Returns the new metadata.
    ///
    /// The commit is **conditional** (optimistic concurrency): the re-coded
    /// payload is only valid for the version that was read, so if a client
    /// write (or another migration) committed a newer version in the
    /// meantime, committing ours would silently revert the client's data.
    /// In that case the freshly-written chunks are rolled back and
    /// [`ScaliaError::Conflict`] is returned — the optimiser simply skips
    /// the object; it will be reconsidered next cycle.
    pub fn replace_placement(
        &self,
        key: &ObjectKey,
        new_placement: &Placement,
    ) -> Result<ObjectMeta> {
        let old_meta = self.read_metadata(key)?;
        if old_meta.striping.is_striped() {
            // Striped objects migrate stripe by stripe (O(stripe) resident,
            // never the whole object) through the streaming module, sharing
            // the conditional commit below.
            return self.replace_placement_striped(key, new_placement, old_meta);
        }
        let data = self.fetch_and_reassemble(&old_meta)?;

        let version = self.infra.next_version(&key.row_key());
        let skey = StripingMeta::storage_key(key, version);
        // Chunk uploads happen outside the commit lock (they may be slow).
        // No re-placement on failure here: the caller chose this placement
        // deliberately; a failed provider just fails the migration (the
        // optimiser retries the object next cycle), and chunk_io has
        // already rolled back the partial upload.
        let striping = chunk_io::write_chunks(&self.infra, new_placement, &skey, &data)
            .map_err(ScaliaError::from)?;

        let new_meta = ObjectMeta {
            version,
            written_at: old_meta.written_at,
            striping,
            ..old_meta.clone()
        };
        self.commit_replacement(key, old_meta.version, &new_meta)?;
        Ok(new_meta)
    }

    /// The conditional (optimistic) commit of a re-placement: validates that
    /// the object is still at `old_version` under the row lock, commits
    /// `new_meta` and invalidates the caches atomically, and garbage-collects
    /// the deprecated versions' chunks after release. On conflict or commit
    /// failure the **new** chunks are rolled back and the error surfaced.
    /// Shared by the single-stripe and striped migration paths.
    pub(crate) fn commit_replacement(
        &self,
        key: &ObjectKey,
        old_version: ObjectVersionId,
        new_meta: &ObjectMeta,
    ) -> Result<()> {
        enum CommitOutcome {
            Committed(Vec<StripingMeta>),
            Conflicted(ObjectVersionId),
            Failed(ScaliaError),
        }
        // Validate-then-commit under the row lock: the object must still
        // exist and still be at the version we re-encoded. The cache
        // invalidation is atomic with the commit (see `Engine::put`). All
        // chunk deletions (GC of the old version, or rollback of ours)
        // happen after the lock is released.
        let outcome = {
            let _commit = self.infra.lock_row_commit(&key.row_key());
            match self.read_metadata(key) {
                Ok(current) if current.version == old_version => {
                    match self.commit_metadata(new_meta) {
                        Ok(deprecated) => {
                            self.invalidate_everywhere(&key.row_key());
                            CommitOutcome::Committed(deprecated)
                        }
                        Err(err) => CommitOutcome::Failed(err),
                    }
                }
                Ok(current) => CommitOutcome::Conflicted(current.version),
                Err(err) => CommitOutcome::Failed(err),
            }
        };
        match outcome {
            CommitOutcome::Committed(deprecated) => {
                for striping in &deprecated {
                    self.delete_chunks(striping);
                }
                Ok(())
            }
            CommitOutcome::Conflicted(current_version) => {
                // Lost the race: roll back our chunks and report it.
                self.delete_chunks(&new_meta.striping);
                Err(ScaliaError::Conflict(format!(
                    "placement of {key} moved from version {old_version} to {current_version} \
                     during migration"
                )))
            }
            CommitOutcome::Failed(err) => {
                self.delete_chunks(&new_meta.striping);
                Err(err)
            }
        }
    }

    /// The access history of an object, as recorded by the statistics
    /// pipeline.
    pub fn history(&self, key: &ObjectKey) -> AccessHistory {
        self.infra
            .statistics(self.datacenter)
            .history(&key.row_key(), scalia_types::stats::DEFAULT_HISTORY_LEN)
    }

    pub(crate) fn invalidate_everywhere(&self, row_key: &str) {
        for cache in &self.all_caches {
            cache.invalidate(row_key);
        }
    }

    pub(crate) fn log_access(
        &self,
        key: &ObjectKey,
        kind: AccessKind,
        bytes: ByteSize,
        size: ByteSize,
    ) {
        self.log_agent.log(AccessLogRecord {
            engine: self.id,
            object_row_key: key.row_key(),
            period: self.infra.current_period(),
            kind,
            bytes,
            object_size: size,
        });
    }
}

/// Identifies a provider that should be avoided (used by tests and repair).
pub fn exclude_provider(
    providers: &[scalia_providers::descriptor::ProviderDescriptor],
    excluded: ProviderId,
) -> Vec<scalia_providers::descriptor::ProviderDescriptor> {
    providers
        .iter()
        .filter(|p| p.id != excluded)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ScaliaCluster;
    use scalia_types::reliability::Reliability;

    fn cluster() -> ScaliaCluster {
        ScaliaCluster::builder()
            .datacenters(2)
            .engines_per_datacenter(2)
            .build()
    }

    fn rule() -> StorageRule {
        StorageRule::new(
            "test",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            scalia_types::zone::ZoneSet::all(),
            0.5,
        )
    }

    #[test]
    fn put_get_roundtrip_through_engine() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("photos", "cat.jpg");
        let payload = Bytes::from(vec![7u8; 300_000]);
        let meta = engine
            .put(&key, payload.clone(), "image/jpeg", rule(), None)
            .unwrap();
        assert!(
            meta.striping.chunks.len() >= 2,
            "lock-in 0.5 needs ≥2 providers"
        );
        assert_eq!(meta.size, ByteSize::from_bytes(300_000));

        // Any engine (any datacenter) can read it back.
        for idx in 0..cluster.engine_count() {
            let data = cluster.engine(idx).get(&key).unwrap();
            assert_eq!(data, payload);
        }
    }

    #[test]
    fn read_miss_reports_not_found() {
        let cluster = cluster();
        let err = cluster
            .engine(0)
            .get(&ObjectKey::new("photos", "missing.jpg"))
            .unwrap_err();
        assert!(matches!(err, ScaliaError::ObjectNotFound(_)));
    }

    #[test]
    fn overwrite_cleans_up_previous_version_chunks() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("docs", "report.pdf");
        engine
            .put(
                &key,
                Bytes::from(vec![1u8; 100_000]),
                "application/pdf",
                rule(),
                None,
            )
            .unwrap();
        let stored_after_first: u64 = cluster
            .infra()
            .backends()
            .iter()
            .map(|b| b.stored_bytes().bytes())
            .sum();
        engine
            .put(
                &key,
                Bytes::from(vec![2u8; 100_000]),
                "application/pdf",
                rule(),
                None,
            )
            .unwrap();
        let stored_after_second: u64 = cluster
            .infra()
            .backends()
            .iter()
            .map(|b| b.stored_bytes().bytes())
            .sum();
        // The old version's chunks were deleted, so the footprint stays flat
        // (within a small tolerance for padding differences).
        assert!(
            stored_after_second <= stored_after_first + 1024,
            "old chunks must be garbage collected: {stored_after_first} -> {stored_after_second}"
        );
        // And the content served is the new one.
        assert_eq!(engine.get(&key).unwrap()[0], 2u8);
    }

    #[test]
    fn cache_serves_repeated_reads_without_provider_traffic() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("photos", "logo.png");
        engine
            .put(
                &key,
                Bytes::from(vec![3u8; 50_000]),
                "image/png",
                rule(),
                None,
            )
            .unwrap();
        engine.get(&key).unwrap();
        let ops_after_first: u64 = cluster
            .infra()
            .backends()
            .iter()
            .map(|b| b.usage().ops)
            .sum();
        for _ in 0..10 {
            engine.get(&key).unwrap();
        }
        let ops_after_many: u64 = cluster
            .infra()
            .backends()
            .iter()
            .map(|b| b.usage().ops)
            .sum();
        assert_eq!(
            ops_after_first, ops_after_many,
            "cached reads must not touch the providers"
        );
    }

    #[test]
    fn delete_removes_chunks_and_metadata() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("backups", "db.tar");
        engine
            .put(
                &key,
                Bytes::from(vec![9u8; 200_000]),
                "application/x-tar",
                rule(),
                None,
            )
            .unwrap();
        engine.delete(&key).unwrap();
        assert!(matches!(
            engine.get(&key).unwrap_err(),
            ScaliaError::ObjectNotFound(_)
        ));
        let stored: u64 = cluster
            .infra()
            .backends()
            .iter()
            .map(|b| b.stored_bytes().bytes())
            .sum();
        assert_eq!(stored, 0, "all chunks must be removed");
        assert!(engine.list("backups").is_empty());
    }

    #[test]
    fn list_reflects_puts_and_deletes() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let k1 = ObjectKey::new("pics", "a.gif");
        let k2 = ObjectKey::new("pics", "b.gif");
        engine
            .put(&k1, Bytes::from(vec![1u8; 1000]), "image/gif", rule(), None)
            .unwrap();
        engine
            .put(&k2, Bytes::from(vec![1u8; 1000]), "image/gif", rule(), None)
            .unwrap();
        let mut listed = engine.list("pics");
        listed.sort();
        assert_eq!(listed, vec![k1.clone(), k2.clone()]);
        engine.delete(&k1).unwrap();
        assert_eq!(engine.list("pics"), vec![k2]);
        assert!(engine.list("other").is_empty());
    }

    #[test]
    fn read_survives_a_provider_outage() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("photos", "holiday.jpg");
        let payload = Bytes::from(vec![5u8; 400_000]);
        let meta = engine
            .put(&key, payload.clone(), "image/jpeg", rule(), None)
            .unwrap();
        assert!(
            meta.striping.chunks.len() as u32 > meta.striping.m,
            "needs redundancy"
        );

        // Take down one provider that holds a chunk; reads must still work.
        let victim = meta.striping.chunks[0].provider;
        cluster.infra().set_provider_down(victim, true);
        // Bypass the cache to force a provider read.
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(engine.get(&key).unwrap(), payload);
    }

    #[test]
    fn delete_during_outage_is_postponed_until_recovery() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("backups", "weekly.tar");
        let meta = engine
            .put(
                &key,
                Bytes::from(vec![8u8; 120_000]),
                "application/x-tar",
                rule(),
                None,
            )
            .unwrap();
        let victim = meta.striping.chunks[0].provider;
        cluster.infra().set_provider_down(victim, true);

        engine.delete(&key).unwrap();
        assert!(cluster.infra().pending_delete_count() > 0);
        let victim_backend = cluster.infra().backend(victim).unwrap();
        assert!(
            victim_backend.object_count() > 0,
            "chunk still there while down"
        );

        cluster.infra().set_provider_down(victim, false);
        cluster.infra().retry_pending_deletes();
        assert_eq!(cluster.infra().pending_delete_count(), 0);
        assert_eq!(victim_backend.object_count(), 0);
    }

    #[test]
    fn replace_placement_moves_chunks() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let key = ObjectKey::new("photos", "move-me.jpg");
        let payload = Bytes::from(vec![4u8; 250_000]);
        engine
            .put(&key, payload.clone(), "image/jpeg", rule(), None)
            .unwrap();

        // Force a mirroring placement on the two S3 offerings.
        let all = cluster.infra().catalog().all();
        let new_placement = Placement {
            providers: vec![all[0].clone(), all[1].clone()],
            m: 1,
        };
        let new_meta = engine.replace_placement(&key, &new_placement).unwrap();
        assert_eq!(new_meta.striping.m, 1);
        assert_eq!(new_meta.striping.chunks.len(), 2);
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(engine.get(&key).unwrap(), payload);
        // Only the two chosen providers hold data now.
        for backend in cluster.infra().backends() {
            let holds = backend.object_count() > 0;
            let chosen = new_meta
                .striping
                .chunks
                .iter()
                .any(|c| c.provider == backend.descriptor().id);
            assert_eq!(holds, chosen, "provider {}", backend.descriptor().name);
        }
    }

    #[test]
    fn list_merges_past_a_lagging_replica() {
        // Regression for the single-replica listing bug: a node that was
        // down during writes and came back *before* anti-entropy replayed
        // its hints must not make `list` drop committed keys or resurrect
        // deleted ones.
        let cluster = cluster();
        let engine = cluster.engine(0);
        let db = cluster.infra().database().clone();
        let kept = ObjectKey::new("pics", "kept.gif");
        let doomed = ObjectKey::new("pics", "doomed.gif");
        let fresh = ObjectKey::new("pics", "fresh.gif");
        engine
            .put(
                &kept,
                Bytes::from(vec![1u8; 1000]),
                "image/gif",
                rule(),
                None,
            )
            .unwrap();
        engine
            .put(
                &doomed,
                Bytes::from(vec![1u8; 1000]),
                "image/gif",
                rule(),
                None,
            )
            .unwrap();

        // The local datacenter's node misses a put and a delete...
        db.nodes()[0].set_up(false);
        engine
            .put(
                &fresh,
                Bytes::from(vec![2u8; 1000]),
                "image/gif",
                rule(),
                None,
            )
            .unwrap();
        engine.delete(&doomed).unwrap();
        // ...and comes back lagging: its hints have not been replayed yet.
        db.nodes()[0].set_up(true);
        assert!(db.pending_hints() > 0, "the replica must really be lagging");

        let mut listed = engine.list("pics");
        listed.sort();
        assert_eq!(
            listed,
            vec![fresh.clone(), kept.clone()],
            "list must merge the freshest cells across replicas, not trust the lagging one"
        );

        // Anti-entropy settles the replica; the listing is unchanged.
        db.anti_entropy();
        assert_eq!(db.pending_hints(), 0);
        let mut listed = engine.list("pics");
        listed.sort();
        assert_eq!(listed, vec![fresh, kept]);
    }

    #[test]
    fn transient_class_record_failure_retries_and_does_not_strand_the_object() {
        use scalia_providers::failure::FaultPlan;
        use std::sync::Arc;

        let cluster = cluster();
        let engine = cluster.engine(0);
        let infra = cluster.infra().clone();
        let key = ObjectKey::new("docs", "classed.pdf");

        // The first class-record attempt fails (injected); the retry must
        // land the class so the optimizer's class group sees the object.
        let plan = Arc::new(FaultPlan::new());
        plan.arm("put::record-class");
        infra.set_fault_plan(Some(plan.clone()));
        let meta = engine
            .put(
                &key,
                Bytes::from(vec![6u8; 150_000]),
                "application/pdf",
                rule(),
                None,
            )
            .unwrap();
        infra.set_fault_plan(None);
        assert_eq!(plan.fired(), vec!["put::record-class".to_string()]);

        let class = ObjectClass::of("application/pdf", meta.size);
        let stats = infra.statistics(DatacenterId::new(0));
        assert_eq!(
            stats.object_class(&key.row_key()).as_deref(),
            Some(class.id()),
            "a transient statistics failure must not strand the object outside its class group"
        );
        let (retries, failures) = infra.class_record_counters();
        assert_eq!((retries, failures), (1, 0));
    }

    #[test]
    fn exhausted_class_record_surfaces_a_counter_without_failing_the_put() {
        let cluster = cluster();
        let engine = cluster.engine(0);
        let infra = cluster.infra().clone();

        // Every replica down: all attempts fail. The helper must not error
        // (the object is already committed) but the failure must be counted.
        for node in infra.database().nodes() {
            node.set_up(false);
        }
        engine.record_class_with_retry("objects:docs/lost.pdf", "class-x");
        for node in infra.database().nodes() {
            node.set_up(true);
        }
        let (retries, failures) = infra.class_record_counters();
        assert_eq!(failures, 1, "exhaustion must be surfaced on the counter");
        assert_eq!(retries, 2, "two mid-loop retries before giving up");
    }
}
