//! The per-datacenter caching layer.
//!
//! Upon a read, if the object is present in the cache it is served without
//! touching the remote providers, which both lowers latency and avoids the
//! providers' bandwidth-out and operation charges (§III-B). The cache is a
//! byte-bounded LRU; on every write the object is invalidated in *all*
//! datacenters to keep reads consistent.
//!
//! # Invalidation epochs
//!
//! A slow reader races writers: it reads metadata, spends a while fetching
//! chunks, and only then wants to populate the cache — by which time a
//! writer may have committed a newer version and invalidated the entry.
//! Inserting the stale payload *after* that invalidation would poison the
//! cache until the next write. Each key therefore carries an
//! **invalidation epoch**: readers snapshot it ([`Cache::read_epoch`])
//! *before* reading metadata and populate conditionally
//! ([`Cache::put_if_epoch`]) — if any invalidation touched the key in
//! between, the insert is skipped. This replaces the previous
//! revalidate-by-re-reading-metadata scheme, eliminating one metadata read
//! per uncached get.
//!
//! The epoch table is bounded: past [`EPOCH_CAP`] tracked keys it is
//! cleared and a *generation* counter (the epoch's high bits) is bumped,
//! which conservatively invalidates every outstanding snapshot — readers
//! skip their populate, never serve stale data.

use bytes::Bytes;
use parking_lot::Mutex;
use scalia_types::size::ByteSize;
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a 64-bit digest — the cache's integrity check. Much cheaper than a
/// cryptographic hash and plenty for what it guards against: *accidental*
/// in-process corruption (a buggy in-place mutation of shared `Bytes`, a
/// torn entry), not an adversary.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One cached object plus the integrity digest recorded when it was
/// inserted. Every hit re-derives the digest and fails closed (treats the
/// entry as a miss) on mismatch — a corrupt cache entry must never be
/// served when the providers still hold the true bytes.
struct Entry {
    data: Bytes,
    len: usize,
    digest: u64,
}

impl Entry {
    fn new(data: Bytes) -> Self {
        Entry {
            len: data.len(),
            digest: fnv1a64(&data),
            data,
        }
    }

    fn verified(&self) -> bool {
        self.data.len() == self.len && fnv1a64(&self.data) == self.digest
    }
}

/// Bound on per-key invalidation epochs kept; exceeding it clears the table
/// and bumps the generation (safe: outstanding populates are skipped).
pub const EPOCH_CAP: usize = 65_536;

struct CacheInner {
    map: HashMap<String, Entry>,
    /// Keys in LRU order: front = least recently used.
    order: Vec<String>,
    used: u64,
    hits: u64,
    misses: u64,
    /// Entries dropped because their bytes no longer matched the digest
    /// recorded at insert (served as a miss, never as corrupt data).
    corruptions: u64,
    /// Per-key invalidation counters (low 32 bits of the epoch).
    epochs: HashMap<String, u32>,
    /// Epoch high bits; bumped whenever the per-key table is reset.
    generation: u32,
}

impl CacheInner {
    fn epoch_of(&self, key: &str) -> u64 {
        ((self.generation as u64) << 32) | self.epochs.get(key).copied().unwrap_or(0) as u64
    }

    fn bump_epoch(&mut self, key: &str) {
        let counter = self.epochs.entry(key.to_string()).or_insert(0);
        *counter = counter.wrapping_add(1);
        if self.epochs.len() > EPOCH_CAP {
            self.epochs.clear();
            self.generation = self.generation.wrapping_add(1);
        }
    }
}

/// A byte-bounded LRU cache for fully reassembled objects.
pub struct Cache {
    capacity: u64,
    inner: Mutex<CacheInner>,
}

impl Cache {
    /// Creates a cache bounded to `capacity` bytes. A zero capacity disables
    /// caching entirely (every lookup misses).
    pub fn new(capacity: ByteSize) -> Self {
        Cache {
            capacity: capacity.bytes(),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
                used: 0,
                hits: 0,
                misses: 0,
                corruptions: 0,
                epochs: HashMap::new(),
                generation: 0,
            }),
        }
    }

    /// Creates a shared cache.
    pub fn shared(capacity: ByteSize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// Looks up an object, refreshing its recency on a hit.
    ///
    /// Every hit cross-checks the entry's length and FNV-1a digest against
    /// what was recorded at insert. A mismatch **fails closed**: the corrupt
    /// entry is dropped and the lookup reported as a miss, so the engine
    /// refetches from the providers instead of serving damaged bytes.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        match inner.map.get(key) {
            Some(entry) if entry.verified() => {
                let data = entry.data.clone();
                inner.hits += 1;
                if let Some(pos) = inner.order.iter().position(|k| k == key) {
                    let k = inner.order.remove(pos);
                    inner.order.push(k);
                }
                Some(data)
            }
            Some(_) => {
                // Corrupt: evict, count, miss.
                if let Some(entry) = inner.map.remove(key) {
                    inner.used -= entry.data.len() as u64;
                }
                if let Some(pos) = inner.order.iter().position(|k| k == key) {
                    inner.order.remove(pos);
                }
                inner.corruptions += 1;
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts an object, evicting least-recently-used entries as needed.
    /// Objects larger than the whole cache are not cached.
    pub fn put(&self, key: &str, data: Bytes) {
        let mut inner = self.inner.lock();
        self.insert_locked(&mut inner, key, data);
    }

    /// The key's current invalidation epoch. Readers snapshot this *before*
    /// reading the object's metadata, so [`Cache::put_if_epoch`] can tell
    /// whether any write invalidated the key while the payload was being
    /// fetched.
    pub fn read_epoch(&self, key: &str) -> u64 {
        self.inner.lock().epoch_of(key)
    }

    /// Inserts only if the key's invalidation epoch still equals `epoch`
    /// (snapshotted via [`Cache::read_epoch`] before the metadata read).
    /// Returns whether the insert happened. A concurrent write's
    /// invalidation bumps the epoch, so a payload fetched for a deprecated
    /// version can never land after the invalidation that should have
    /// covered it.
    pub fn put_if_epoch(&self, key: &str, data: Bytes, epoch: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.epoch_of(key) != epoch {
            return false;
        }
        self.insert_locked(&mut inner, key, data)
    }

    fn insert_locked(&self, inner: &mut CacheInner, key: &str, data: Bytes) -> bool {
        let size = data.len() as u64;
        if size > self.capacity {
            return false;
        }
        if let Some(old) = inner.map.remove(key) {
            inner.used -= old.data.len() as u64;
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                inner.order.remove(pos);
            }
        }
        while inner.used + size > self.capacity {
            let Some(victim) = inner.order.first().cloned() else {
                break;
            };
            inner.order.remove(0);
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.used -= evicted.data.len() as u64;
            }
        }
        inner.map.insert(key.to_string(), Entry::new(data));
        inner.order.push(key.to_string());
        inner.used += size;
        true
    }

    /// Invalidates one object (called on writes and deletes, in every
    /// datacenter) and bumps its invalidation epoch, so in-flight reads of
    /// the deprecated version skip their populate.
    pub fn invalidate(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.map.remove(key) {
            inner.used -= old.data.len() as u64;
        }
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            inner.order.remove(pos);
        }
        inner.bump_epoch(key);
    }

    /// Empties the cache. Bumps the epoch generation so every outstanding
    /// populate snapshot is conservatively stale.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.used = 0;
        inner.epochs.clear();
        inner.generation = inner.generation.wrapping_add(1);
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Entries dropped by the hit-path integrity check since creation.
    pub fn corruption_count(&self) -> u64 {
        self.inner.lock().corruptions
    }

    /// Corrupts a cached entry's bytes in place **without** updating its
    /// recorded digest — a stand-in for in-process memory damage, used by
    /// integrity tests. Returns whether the key was present.
    #[doc(hidden)]
    pub fn corrupt_entry_for_test(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        let Some(entry) = inner.map.get_mut(key) else {
            return false;
        };
        let mut bytes = entry.data.to_vec();
        match bytes.first_mut() {
            Some(b) => *b = b.wrapping_add(1),
            None => bytes.push(0xFF),
        }
        entry.data = Bytes::from(bytes);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let cache = Cache::new(ByteSize::from_kb(10));
        assert!(cache.get("a").is_none());
        cache.put("a", Bytes::from_static(b"hello"));
        assert_eq!(cache.get("a").unwrap(), Bytes::from_static(b"hello"));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 5);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = Cache::new(ByteSize::from_bytes(30));
        cache.put("a", Bytes::from(vec![0u8; 10]));
        cache.put("b", Bytes::from(vec![0u8; 10]));
        cache.put("c", Bytes::from(vec![0u8; 10]));
        // Touch "a" so "b" becomes the LRU victim.
        cache.get("a");
        cache.put("d", Bytes::from(vec![0u8; 10]));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("c").is_some());
        assert!(cache.get("d").is_some());
        assert!(cache.used_bytes() <= 30);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let cache = Cache::new(ByteSize::from_bytes(10));
        cache.put("big", Bytes::from(vec![0u8; 100]));
        assert!(cache.is_empty());
        assert!(cache.get("big").is_none());
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = Cache::new(ByteSize::from_kb(1));
        cache.put("a", Bytes::from_static(b"1"));
        cache.put("b", Bytes::from_static(b"2"));
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        // Invalidating a missing key is a no-op.
        cache.invalidate("zzz");
    }

    #[test]
    fn overwrite_updates_size_accounting() {
        let cache = Cache::new(ByteSize::from_bytes(100));
        cache.put("a", Bytes::from(vec![0u8; 40]));
        cache.put("a", Bytes::from(vec![0u8; 10]));
        assert_eq!(cache.used_bytes(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_gates_stale_populates() {
        let cache = Cache::new(ByteSize::from_kb(1));
        let epoch = cache.read_epoch("k");
        assert!(cache.put_if_epoch("k", Bytes::from_static(b"v1"), epoch));
        assert_eq!(cache.get("k").unwrap(), Bytes::from_static(b"v1"));

        // A write's invalidation bumps the epoch: a reader that snapshotted
        // before the write can no longer insert its (now deprecated) bytes.
        cache.invalidate("k");
        assert!(!cache.put_if_epoch("k", Bytes::from_static(b"stale"), epoch));
        assert!(cache.get("k").is_none());

        // A fresh snapshot works again.
        let fresh = cache.read_epoch("k");
        assert_ne!(fresh, epoch);
        assert!(cache.put_if_epoch("k", Bytes::from_static(b"v2"), fresh));

        // clear() bumps the generation: every outstanding snapshot — even
        // of keys never individually invalidated — becomes stale.
        let other = cache.read_epoch("other");
        cache.clear();
        assert!(!cache.put_if_epoch("other", Bytes::from_static(b"x"), other));
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_entry_fails_closed_as_a_miss() {
        let cache = Cache::new(ByteSize::from_kb(10));
        cache.put("a", Bytes::from(vec![7u8; 100]));
        cache.put("b", Bytes::from(vec![8u8; 100]));
        assert!(cache.corrupt_entry_for_test("a"));
        assert_eq!(cache.corruption_count(), 0, "detection happens on read");

        // The damaged entry is never served: the hit path drops it and
        // reports a miss, and the byte accounting stays exact.
        assert!(cache.get("a").is_none());
        assert_eq!(cache.corruption_count(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 100);

        // The healthy entry still verifies, and a re-insert of the damaged
        // key records a fresh digest that verifies again.
        assert_eq!(cache.get("b").unwrap(), Bytes::from(vec![8u8; 100]));
        cache.put("a", Bytes::from(vec![9u8; 50]));
        assert_eq!(cache.get("a").unwrap(), Bytes::from(vec![9u8; 50]));
        assert_eq!(cache.corruption_count(), 1);

        // A zero-length entry corrupts (grows a byte) and is caught by the
        // length cross-check.
        cache.put("empty", Bytes::new());
        assert!(cache.corrupt_entry_for_test("empty"));
        assert!(cache.get("empty").is_none());
        assert_eq!(cache.corruption_count(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = Cache::new(ByteSize::ZERO);
        cache.put("a", Bytes::from_static(b"x"));
        assert!(cache.get("a").is_none());
    }
}
