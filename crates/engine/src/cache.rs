//! The per-datacenter caching layer.
//!
//! Upon a read, if the object is present in the cache it is served without
//! touching the remote providers, which both lowers latency and avoids the
//! providers' bandwidth-out and operation charges (§III-B). The cache is a
//! byte-bounded LRU; on every write the object is invalidated in *all*
//! datacenters to keep reads consistent.

use bytes::Bytes;
use parking_lot::Mutex;
use scalia_types::size::ByteSize;
use std::collections::HashMap;
use std::sync::Arc;

struct CacheInner {
    map: HashMap<String, Bytes>,
    /// Keys in LRU order: front = least recently used.
    order: Vec<String>,
    used: u64,
    hits: u64,
    misses: u64,
}

/// A byte-bounded LRU cache for fully reassembled objects.
pub struct Cache {
    capacity: u64,
    inner: Mutex<CacheInner>,
}

impl Cache {
    /// Creates a cache bounded to `capacity` bytes. A zero capacity disables
    /// caching entirely (every lookup misses).
    pub fn new(capacity: ByteSize) -> Self {
        Cache {
            capacity: capacity.bytes(),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
                used: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Creates a shared cache.
    pub fn shared(capacity: ByteSize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// Looks up an object, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        if let Some(data) = inner.map.get(key).cloned() {
            inner.hits += 1;
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                let k = inner.order.remove(pos);
                inner.order.push(k);
            }
            Some(data)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Inserts an object, evicting least-recently-used entries as needed.
    /// Objects larger than the whole cache are not cached.
    pub fn put(&self, key: &str, data: Bytes) {
        let size = data.len() as u64;
        if size > self.capacity {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.map.remove(key) {
            inner.used -= old.len() as u64;
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                inner.order.remove(pos);
            }
        }
        while inner.used + size > self.capacity {
            let Some(victim) = inner.order.first().cloned() else {
                break;
            };
            inner.order.remove(0);
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.used -= evicted.len() as u64;
            }
        }
        inner.map.insert(key.to_string(), data);
        inner.order.push(key.to_string());
        inner.used += size;
    }

    /// Invalidates one object (called on writes and deletes, in every
    /// datacenter).
    pub fn invalidate(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.map.remove(key) {
            inner.used -= old.len() as u64;
        }
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            inner.order.remove(pos);
        }
    }

    /// Empties the cache.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.used = 0;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let cache = Cache::new(ByteSize::from_kb(10));
        assert!(cache.get("a").is_none());
        cache.put("a", Bytes::from_static(b"hello"));
        assert_eq!(cache.get("a").unwrap(), Bytes::from_static(b"hello"));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 5);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = Cache::new(ByteSize::from_bytes(30));
        cache.put("a", Bytes::from(vec![0u8; 10]));
        cache.put("b", Bytes::from(vec![0u8; 10]));
        cache.put("c", Bytes::from(vec![0u8; 10]));
        // Touch "a" so "b" becomes the LRU victim.
        cache.get("a");
        cache.put("d", Bytes::from(vec![0u8; 10]));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("c").is_some());
        assert!(cache.get("d").is_some());
        assert!(cache.used_bytes() <= 30);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let cache = Cache::new(ByteSize::from_bytes(10));
        cache.put("big", Bytes::from(vec![0u8; 100]));
        assert!(cache.is_empty());
        assert!(cache.get("big").is_none());
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = Cache::new(ByteSize::from_kb(1));
        cache.put("a", Bytes::from_static(b"1"));
        cache.put("b", Bytes::from_static(b"2"));
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        // Invalidating a missing key is a no-op.
        cache.invalidate("zzz");
    }

    #[test]
    fn overwrite_updates_size_accounting() {
        let cache = Cache::new(ByteSize::from_bytes(100));
        cache.put("a", Bytes::from(vec![0u8; 40]));
        cache.put("a", Bytes::from(vec![0u8; 10]));
        assert_eq!(cache.used_bytes(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = Cache::new(ByteSize::ZERO);
        cache.put("a", Bytes::from_static(b"x"));
        assert!(cache.get("a").is_none());
    }
}
