//! The periodic optimisation procedure (§III-A3).
//!
//! Every few minutes a new optimisation procedure starts: a *leader* elected
//! among all engines retrieves from the statistics database the set `A` of
//! objects accessed or modified since the previous procedure, splits it into
//! equal shards and assigns one shard per engine. Each engine, in parallel,
//! runs the trend detector on every object of its shard and — only when the
//! access pattern changed considerably — recomputes the placement with
//! Algorithm 1, migrating the chunks when the migration cost is covered by
//! the expected savings.

use crate::engine::Engine;
use crate::infra::Infrastructure;
use parking_lot::Mutex;
use rayon::prelude::*;
use scalia_core::cost::{compute_price, PredictedUsage};
use scalia_core::migration::MigrationPlan;
use scalia_core::placement::{Placement, PlacementEngine};
use scalia_core::trend::TrendDetector;
use scalia_metastore::model::Timestamp;
use scalia_types::ids::EngineId;
use scalia_types::money::Money;
use scalia_types::object::ObjectMeta;
use scalia_types::time::Duration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Statistics of one optimisation procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationReport {
    /// Engine elected leader for this procedure.
    pub leader: EngineId,
    /// Objects in the accessed/modified set `A`.
    pub objects_considered: usize,
    /// Objects whose access pattern changed (trend detected).
    pub trend_changes: usize,
    /// Objects whose placement was recomputed with Algorithm 1.
    pub placements_recomputed: usize,
    /// Objects actually migrated to a new provider set.
    pub migrations_executed: usize,
}

/// The periodic optimiser.
pub struct PeriodicOptimizer {
    detector: TrendDetector,
    placement: PlacementEngine,
    last_run: Mutex<Timestamp>,
}

impl PeriodicOptimizer {
    /// Creates an optimiser with the given trend detector and placement
    /// engine.
    pub fn new(detector: TrendDetector, placement: PlacementEngine) -> Self {
        PeriodicOptimizer {
            detector,
            placement,
            last_run: Mutex::new(Timestamp::ZERO),
        }
    }

    /// Runs one optimisation procedure over all engines. With
    /// `force = true` every object of the accessed set is re-evaluated even
    /// if its trend did not change (used after the provider catalog changes,
    /// e.g. a new provider registered or one failed).
    pub fn run(
        &self,
        engines: &[Arc<Engine>],
        infra: &Arc<Infrastructure>,
        force: bool,
    ) -> OptimizationReport {
        let Some(leader) = engines.iter().min_by_key(|e| e.id().0) else {
            return OptimizationReport::default();
        };

        // 1) + 2) The leader fetches the accessed/modified object set.
        let since = {
            let mut last = self.last_run.lock();
            let since = *last;
            *last = infra.next_timestamp();
            since
        };
        let stats = infra.statistics(leader.datacenter());
        let accessed = stats.objects_accessed_since(since);

        let report_trends = AtomicUsize::new(0);
        let report_recomputed = AtomicUsize::new(0);
        let report_migrated = AtomicUsize::new(0);

        // 3) + 4) Split A into |E| shards, one per engine, processed in
        // parallel.
        let shard_count = engines.len().max(1);
        let shards: Vec<(usize, Vec<String>)> = accessed
            .chunks(accessed.len().div_ceil(shard_count).max(1))
            .enumerate()
            .map(|(i, chunk)| (i, chunk.to_vec()))
            .collect();

        shards.par_iter().for_each(|(engine_idx, shard)| {
            let engine = &engines[engine_idx % engines.len()];
            for row_key in shard {
                self.optimize_object(
                    engine,
                    infra,
                    row_key,
                    force,
                    &report_trends,
                    &report_recomputed,
                    &report_migrated,
                );
            }
        });

        OptimizationReport {
            leader: leader.id(),
            objects_considered: accessed.len(),
            trend_changes: report_trends.load(Ordering::Relaxed),
            placements_recomputed: report_recomputed.load(Ordering::Relaxed),
            migrations_executed: report_migrated.load(Ordering::Relaxed),
        }
    }

    /// 5) For one object: detect a trend change and, if needed, recompute
    ///    the placement and migrate.
    #[allow(clippy::too_many_arguments)]
    fn optimize_object(
        &self,
        engine: &Arc<Engine>,
        infra: &Arc<Infrastructure>,
        row_key: &str,
        force: bool,
        trends: &AtomicUsize,
        recomputed: &AtomicUsize,
        migrated: &AtomicUsize,
    ) {
        let stats = infra.statistics(engine.datacenter());
        let Some(cell) = infra
            .database()
            .get_latest(engine.datacenter(), row_key, "meta")
        else {
            return; // Object deleted since it was accessed.
        };
        let Ok(meta) = serde_json::from_value::<ObjectMeta>(cell.value) else {
            return;
        };

        let history = stats.history(row_key, scalia_types::stats::DEFAULT_HISTORY_LEN);
        let series = history.ops_series(history.len());
        let trend_changed = self.detector.detect(&series);
        if trend_changed {
            trends.fetch_add(1, Ordering::Relaxed);
        }
        if !trend_changed && !force {
            return;
        }

        // Decision period for this object (adaptive, bounded by TTL).
        let period_hours = infra.sampling_period().as_hours();
        let mut controller = infra.decision_controller(row_key, Duration::from_hours(24));
        let upper_bound = self.ttl_upper_bound(&meta, infra, &history);
        let rule = meta.rule.clone();
        let size = meta.size;
        // All searches below go through the shared placement decision cache
        // (rule + usage class + catalog version): one optimisation cycle
        // re-prices each class once instead of once per object.
        controller.on_optimization(upper_bound, |window| {
            let periods = window.periods(infra.sampling_period()).max(1) as usize;
            let usage = PredictedUsage::from_history(size, &history, periods, period_hours);
            match infra.best_placement_cached(&self.placement, &rule, &usage) {
                Ok(decision) => decision
                    .expected_cost
                    .scale(1.0 / usage.duration_hours.max(1e-9)),
                Err(_) => Money::MAX,
            }
        });
        let decision_period = controller.current();
        infra.store_decision_controller(row_key, controller);

        let periods = decision_period.periods(infra.sampling_period()).max(1) as usize;
        let usage = PredictedUsage::from_history(meta.size, &history, periods, period_hours);

        let Ok(decision) = infra.best_placement_cached(&self.placement, &meta.rule, &usage) else {
            return;
        };
        recomputed.fetch_add(1, Ordering::Relaxed);

        // Current placement and its expected cost over the same window.
        let current_providers: Vec<_> = meta
            .striping
            .chunks
            .iter()
            .filter_map(|c| infra.catalog().get(c.provider))
            .collect();
        let current = Placement {
            providers: current_providers.clone(),
            m: meta.striping.m,
        };
        let current_cost = compute_price(&current_providers, meta.striping.m, &usage);

        let plan = MigrationPlan::build(
            current,
            decision.placement.clone(),
            &usage,
            current_cost,
            decision.expected_cost,
        );
        if plan.changes_placement()
            && plan.is_beneficial()
            && engine.replace_placement(&meta.key, &plan.to).is_ok()
        {
            migrated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Upper bound for the decision period: the TTL hint if the writer gave
    /// one, otherwise the expected remaining lifetime of the object's class,
    /// otherwise the length of the available history.
    fn ttl_upper_bound(
        &self,
        meta: &ObjectMeta,
        infra: &Arc<Infrastructure>,
        history: &scalia_types::stats::AccessHistory,
    ) -> Duration {
        if let Some(ttl) = meta.ttl_hint_hours {
            return Duration::from_secs((ttl * 3600.0) as u64);
        }
        let stats = infra.statistics(scalia_types::ids::DatacenterId::new(0));
        let class = scalia_core::classify::ObjectClass::of(&meta.mime, meta.size);
        let lifetimes = stats.class_lifetimes(class.id());
        if !lifetimes.is_empty() {
            let dist = scalia_core::lifetime::LifetimeDistribution::from_samples(lifetimes);
            let age = infra.now().since(meta.written_at).as_hours();
            if let Some(remaining) = dist.expected_remaining(age) {
                return Duration::from_secs((remaining.max(1.0) * 3600.0) as u64);
            }
        }
        infra
            .sampling_period()
            .times(history.len().max(1) as u64)
            .max(Duration::from_hours(24))
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::cluster::ScaliaCluster;
    use scalia_types::object::ObjectKey;
    use scalia_types::reliability::Reliability;
    use scalia_types::rules::StorageRule;
    use scalia_types::time::SimTime;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "opt",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            1.0,
        )
    }

    fn simulate_periods(
        cluster: &ScaliaCluster,
        key: &ObjectKey,
        reads_per_hour: &[u64],
        start_hour: u64,
    ) {
        for (i, &reads) in reads_per_hour.iter().enumerate() {
            for _ in 0..reads {
                cluster.get(key).unwrap();
            }
            // Reads must hit the providers to be realistic for billing, but
            // for statistics purposes the log agent records them either way.
            cluster.tick(SimTime::from_hours(start_hour + i as u64 + 1));
        }
    }

    #[test]
    fn no_accesses_means_nothing_to_optimize() {
        let cluster = ScaliaCluster::builder().build();
        // Drain the initial state.
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 0);
        assert_eq!(report.migrations_executed, 0);
    }

    #[test]
    fn stable_access_pattern_triggers_no_recomputation() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "steady");
        cluster
            .put(&key, vec![1u8; 100_000], "image/png", rule(), None)
            .unwrap();
        cluster.run_optimization(false);
        // A steady 5 reads/hour for 10 hours.
        simulate_periods(&cluster, &key, &[5; 10], 0);
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 1);
        assert_eq!(report.trend_changes, 0);
        assert_eq!(report.migrations_executed, 0);
    }

    #[test]
    fn slashdot_spike_triggers_migration_to_mirroring() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "viral");
        cluster
            .put(&key, vec![1u8; 1_000_000], "image/jpeg", rule(), None)
            .unwrap();
        let before = cluster.engine(0).read_metadata(&key).unwrap();
        cluster.run_optimization(false);

        // A quiet stretch first; the optimiser sees no trend change.
        simulate_periods(&cluster, &key, &[0, 0, 0, 0, 1, 1], 0);
        let quiet = cluster.run_optimization(false);
        assert_eq!(quiet.migrations_executed, 0);

        // Then the Slashdot spike: the read volume makes bandwidth dominate
        // and mirroring (m = 1) on the cheap-read providers wins. The
        // optimiser runs while the surge is in progress, like the paper's
        // 5-minute procedure.
        simulate_periods(&cluster, &key, &[10, 80, 150, 150], 6);
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 1);
        assert!(report.trend_changes >= 1, "the spike must be detected");
        assert!(report.placements_recomputed >= 1);

        let after = cluster.engine(0).read_metadata(&key).unwrap();
        if report.migrations_executed > 0 {
            assert!(
                !after
                    .striping
                    .providers()
                    .iter()
                    .eq(before.striping.providers().iter())
                    || after.striping.m != before.striping.m
            );
            assert_eq!(after.striping.m, 1, "hot object should be mirrored");
        }
        // Whatever happened, the object must still be readable and intact.
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 1_000_000);
    }

    #[test]
    fn forced_optimization_reacts_to_new_provider() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("backups", "weekly.tar");
        let lockin_rule = rule().with_lockin(0.5);
        cluster
            .put(
                &key,
                vec![3u8; 2_000_000],
                "application/x-tar",
                lockin_rule,
                None,
            )
            .unwrap();
        cluster.run_optimization(false);

        // A couple of idle periods, then a much cheaper provider appears.
        cluster.tick(SimTime::from_hours(1));
        cluster.get(&key).unwrap();
        cluster.tick(SimTime::from_hours(2));
        let cheap = scalia_providers::descriptor::ProviderDescriptor::public(
            scalia_types::ids::ProviderId::new(0),
            "UltraCheap",
            "practically free storage",
            scalia_providers::sla::ProviderSla::from_percent(99.9999, 99.9),
            scalia_providers::pricing::PricingPolicy::from_dollars(0.001, 0.0, 0.01, 0.0),
            scalia_types::zone::ZoneSet::all(),
        );
        cluster.infra().register_provider(cheap);

        let report = cluster.run_optimization(true);
        assert!(report.placements_recomputed >= 1);
        assert!(
            report.migrations_executed >= 1,
            "the huge saving must justify migration"
        );
        let meta = cluster.engine(0).read_metadata(&key).unwrap();
        let names: Vec<String> = meta
            .striping
            .providers()
            .iter()
            .filter_map(|id| cluster.infra().catalog().get(*id))
            .map(|d| d.name)
            .collect();
        assert!(names.contains(&"UltraCheap".to_string()));
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 2_000_000);
    }
}
