//! The periodic optimisation procedure (§III-A3), class-centric.
//!
//! Every few minutes a new optimisation procedure starts: a *leader* elected
//! among all engines retrieves from the statistics database the set `A` of
//! objects accessed or modified since the previous procedure (a range scan
//! over the dirty-set index — cost proportional to the objects touched, not
//! the rows stored), splits it into shards and, in parallel, groups the
//! members by `(class, storage rule)`. Scalia's scalability argument
//! (§III-A1/A2) is that statistics and re-placement amortise across a
//! class: the optimiser therefore runs the trend detector and Algorithm 1
//! **once per group** — `K` searches for `N` accessed objects in `K`
//! classes — and maps each group decision onto every member (members whose
//! persisted placement digest already matches the decision are done with
//! zero further reads).
//!
//! Migrations are executed through a per-cycle **budget** (bytes uploaded
//! and one-off dollars): candidates are ordered by expected saving per
//! migrated byte, admitted until the budget runs out, and the tail is
//! *deferred* — never dropped — to the next cycle, which re-evaluates the
//! deferred objects against fresh statistics and catalog state. At least
//! one candidate is admitted per cycle, so a backlog always converges to
//! the unbudgeted placement.
//!
//! The pre-class per-object sweep is preserved as
//! [`PeriodicOptimizer::run_per_object`]: it is the differential baseline —
//! a cycle over singleton classes must reproduce its report and migrations
//! bit for bit — and the benchmark's point of comparison.

use crate::engine::Engine;
use crate::infra::Infrastructure;
use parking_lot::Mutex;
use rayon::prelude::*;
use scalia_core::classify::{ClassUsage, ObjectClass};
use scalia_core::cost::{compute_price_weighted, PredictedUsage};
use scalia_core::decision::{GroupDecision, GroupKey};
use scalia_core::migration::{MigrationBudget, MigrationPlan};
use scalia_core::placement::{Placement, PlacementEngine};
use scalia_core::trend::TrendDetector;
use scalia_metastore::model::Timestamp;
use scalia_metastore::stats::StatisticsStore;
use scalia_types::ids::EngineId;
use scalia_types::money::Money;
use scalia_types::object::{ObjectKey, ObjectMeta};
use scalia_types::size::ByteSize;
use scalia_types::stats::DEFAULT_HISTORY_LEN;
use scalia_types::time::Duration;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Statistics of one optimisation procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationReport {
    /// Engine elected leader for this procedure.
    pub leader: EngineId,
    /// Objects in the accessed/modified set `A` (plus re-queued deferrals).
    pub objects_considered: usize,
    /// Objects whose access pattern changed (every member of a group whose
    /// class-level trend moved; per-object mode: objects individually).
    pub trend_changes: usize,
    /// Objects whose placement was re-evaluated against a fresh decision.
    pub placements_recomputed: usize,
    /// Objects actually migrated to a new provider set.
    pub migrations_executed: usize,
    /// Placement searches the optimiser initiated for decisions: one per
    /// re-evaluated group in class mode (≤ number of classes touched), one
    /// per recomputed object in per-object mode.
    pub searches_executed: usize,
    /// Objects covered by the decisions those searches produced.
    pub objects_covered: usize,
    /// Beneficial migrations pushed past the end of the cycle by the
    /// migration budget (re-queued, never dropped).
    pub migrations_deferred: usize,
    /// Bytes uploaded by the executed migrations.
    pub bytes_migrated: u64,
}

impl OptimizationReport {
    /// Merges two partial reports by summing every counter. The `leader`
    /// field is taken from `self` unless `self` is the empty/default report
    /// (the `reduce` identity), which makes this an associative operation
    /// with [`OptimizationReport::default`] as its neutral element: merging
    /// per-shard partials yields the same total for **any** shard
    /// interleaving or association.
    pub fn merged_with(self, other: OptimizationReport) -> OptimizationReport {
        OptimizationReport {
            leader: if self == OptimizationReport::default() {
                other.leader
            } else {
                self.leader
            },
            objects_considered: self.objects_considered + other.objects_considered,
            trend_changes: self.trend_changes + other.trend_changes,
            placements_recomputed: self.placements_recomputed + other.placements_recomputed,
            migrations_executed: self.migrations_executed + other.migrations_executed,
            searches_executed: self.searches_executed + other.searches_executed,
            objects_covered: self.objects_covered + other.objects_covered,
            migrations_deferred: self.migrations_deferred + other.migrations_deferred,
            bytes_migrated: self.bytes_migrated + other.bytes_migrated,
        }
    }
}

/// What happened to a single object during the per-object sweep; accumulated
/// into per-shard [`OptimizationReport`] partials so the parallel fan-out
/// shares no mutable state at all.
#[derive(Debug, Clone, Copy, Default)]
struct ObjectOutcome {
    trend_changed: bool,
    recomputed: bool,
    migrated: bool,
    bytes_migrated: u64,
}

/// One beneficial migration awaiting budget admission.
struct MigrationCandidate {
    row_key: String,
    key: ObjectKey,
    size: ByteSize,
    savings_per_byte: f64,
    plan: MigrationPlan,
}

/// The compact per-object **optimiser digest** the engine persists next to
/// the metadata (`opt` column) on every commit: exactly the fields the
/// class-centric sweep needs per member — rule identity for subgrouping,
/// current placement for the already-there short-circuit, size and
/// lifetime hints for the group's usage prediction. Reading and decoding it
/// costs a fraction of deserialising full [`ObjectMeta`], so a cycle only
/// pays the metadata read for members that actually diverge from their
/// group's decision.
#[derive(Debug, Clone)]
struct MemberDigest {
    row_key: String,
    rule_name: String,
    rule_fingerprint: [u64; 5],
    size: ByteSize,
    m: u32,
    /// Sorted provider ids of the current placement.
    providers: Vec<u32>,
    written_at: scalia_types::time::SimTime,
    ttl_hint_hours: Option<f64>,
    /// Full metadata, already in hand when the digest was synthesised from
    /// a `meta` read (the missing-digest fallback path).
    meta: Option<ObjectMeta>,
}

/// Serialises the optimiser digest of a metadata version (written by
/// `Engine::commit_metadata` under the same timestamp as the `meta`
/// column). One compact delimited string — a single allocation to read
/// back, where a structured JSON object would clone a whole key/value tree
/// per member per cycle. Layout (the rule name goes last because it is the
/// only field that may contain the delimiter):
///
/// `1|rfp0|rfp1|rfp2|rfp3|rfp4|m|size|written_secs|ttl_bits-or-n|p0,p1,…|rule name`
pub(crate) fn optimizer_digest(meta: &ObjectMeta) -> serde_json::Value {
    // `provider_set()` is the sorted union across stripes; for classic
    // single-stripe objects it equals the sorted chunk provider list, so
    // pre-streaming digests are bit-identical.
    let providers: Vec<u32> = meta.striping.provider_set().iter().map(|p| p.0).collect();
    let rfp = GroupKey::rule_fingerprint(&meta.rule);
    let providers = providers
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let ttl = match meta.ttl_hint_hours {
        Some(ttl) => ttl.to_bits().to_string(),
        None => "n".to_string(),
    };
    serde_json::Value::String(format!(
        "1|{}|{}|{}|{}|{}|{}|{}|{}|{ttl}|{providers}|{}",
        rfp[0],
        rfp[1],
        rfp[2],
        rfp[3],
        rfp[4],
        meta.striping.m,
        meta.size.bytes(),
        meta.written_at.secs(),
        meta.rule.name,
    ))
}

impl MemberDigest {
    /// Decodes a persisted digest; `None` on any structural mismatch (the
    /// caller falls back to the full metadata read).
    fn decode(row_key: String, value: &serde_json::Value) -> Option<MemberDigest> {
        let mut fields = value.as_str()?.splitn(12, '|');
        if fields.next()? != "1" {
            return None;
        }
        let mut rule_fingerprint = [0u64; 5];
        for slot in rule_fingerprint.iter_mut() {
            *slot = fields.next()?.parse().ok()?;
        }
        let m: u32 = fields.next()?.parse().ok()?;
        let size: u64 = fields.next()?.parse().ok()?;
        let written_secs: u64 = fields.next()?.parse().ok()?;
        let ttl_hint_hours = match fields.next()? {
            "n" => None,
            bits => Some(f64::from_bits(bits.parse().ok()?)),
        };
        let providers_field = fields.next()?;
        let providers = if providers_field.is_empty() {
            Vec::new()
        } else {
            providers_field
                .split(',')
                .map(|p| p.parse().ok())
                .collect::<Option<Vec<u32>>>()?
        };
        Some(MemberDigest {
            row_key,
            rule_name: fields.next()?.to_string(),
            rule_fingerprint,
            size: ByteSize::from_bytes(size),
            m,
            providers,
            written_at: scalia_types::time::SimTime::from_secs(written_secs),
            ttl_hint_hours,
            meta: None,
        })
    }

    /// Synthesises the digest from full metadata (objects written before
    /// the digest column existed), keeping the deserialised metadata for
    /// the gate.
    fn from_meta(row_key: String, meta: ObjectMeta) -> MemberDigest {
        // `provider_set()` (sorted union across stripes) so striped objects
        // synthesise a non-empty placement; classic single-stripe objects
        // yield the same sorted provider list as before.
        let providers: Vec<u32> = meta.striping.provider_set().iter().map(|p| p.0).collect();
        MemberDigest {
            row_key,
            rule_name: meta.rule.name.clone(),
            rule_fingerprint: GroupKey::rule_fingerprint(&meta.rule),
            size: meta.size,
            m: meta.striping.m,
            providers,
            written_at: meta.written_at,
            ttl_hint_hours: meta.ttl_hint_hours,
            meta: Some(meta),
        }
    }
}

/// The periodic optimiser.
pub struct PeriodicOptimizer {
    detector: TrendDetector,
    placement: PlacementEngine,
    last_run: Mutex<Timestamp>,
    budget: MigrationBudget,
    /// Row keys of beneficial migrations the budget pushed to a later
    /// cycle. Re-queued into the next accessed set and force-re-evaluated,
    /// so a deferral is never dropped.
    deferred: Mutex<BTreeSet<String>>,
}

impl PeriodicOptimizer {
    /// Creates an optimiser with the given trend detector and placement
    /// engine (and no migration budget: every beneficial migration executes
    /// in the cycle that finds it).
    pub fn new(detector: TrendDetector, placement: PlacementEngine) -> Self {
        PeriodicOptimizer {
            detector,
            placement,
            last_run: Mutex::new(Timestamp::ZERO),
            budget: MigrationBudget::UNLIMITED,
            deferred: Mutex::new(BTreeSet::new()),
        }
    }

    /// Builder-style override of the per-cycle migration budget.
    pub fn with_migration_budget(mut self, budget: MigrationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Row keys currently deferred by the migration budget.
    pub fn deferred_backlog(&self) -> usize {
        self.deferred.lock().len()
    }

    /// Takes the deferred backlog and advances `last_run`, returning the
    /// fetch window `since` — shared by both sweep flavours.
    fn take_window(&self, infra: &Arc<Infrastructure>) -> (Timestamp, BTreeSet<String>) {
        let since = {
            let mut last = self.last_run.lock();
            let since = *last;
            *last = infra.next_timestamp();
            since
        };
        let deferred: BTreeSet<String> = std::mem::take(&mut *self.deferred.lock());
        (since, deferred)
    }

    /// The per-object baseline's accessed set: the seed's full
    /// `modified_since` scan, merged with the budget-deferred backlog.
    fn take_accessed_set_scan(
        &self,
        stats: &StatisticsStore,
        infra: &Arc<Infrastructure>,
    ) -> (Vec<String>, BTreeSet<String>) {
        let (since, deferred) = self.take_window(infra);
        let mut accessed = stats.objects_accessed_since_scan(since);
        accessed.extend(deferred.iter().cloned());
        accessed.sort_unstable();
        accessed.dedup();
        (accessed, deferred)
    }

    /// The class-centric accessed set: a range scan over the dirty-set
    /// index, each entry carrying its class tag, merged with the deferred
    /// backlog (whose tags are resolved from the objects' recorded classes).
    fn take_accessed_set_classified(
        &self,
        stats: &StatisticsStore,
        infra: &Arc<Infrastructure>,
    ) -> (Vec<(String, Option<String>)>, BTreeSet<String>) {
        let (since, deferred) = self.take_window(infra);
        let (mut accessed, _) = stats.objects_accessed_since_classified(since);
        // Buckets older than `since` can never qualify again: drop them
        // so the index footprint tracks recent traffic, not history.
        stats.prune_dirty_before(since);
        if !deferred.is_empty() {
            // O(A + D): one hash set over the accessed keys, not a linear
            // scan per deferred key (a tight budget can defer thousands).
            let present: std::collections::HashSet<&str> =
                accessed.iter().map(|(key, _)| key.as_str()).collect();
            let missing: Vec<String> = deferred
                .iter()
                .filter(|row_key| !present.contains(row_key.as_str()))
                .cloned()
                .collect();
            drop(present);
            accessed.extend(missing.into_iter().map(|row_key| (row_key, None)));
        }
        (accessed, deferred)
    }

    // ------------------------------------------------------------------
    // Class-centric sweep (the default)
    // ------------------------------------------------------------------

    /// Runs one optimisation procedure over all engines: shard the accessed
    /// set, group by `(class, rule)`, one placement search per group, map
    /// the decision onto the members, then execute the beneficial
    /// migrations best-savings-per-byte-first under the migration budget.
    /// With `force = true` every group is re-evaluated even if its class
    /// trend did not change (used after the provider catalog changes).
    pub fn run(
        &self,
        engines: &[Arc<Engine>],
        infra: &Arc<Infrastructure>,
        force: bool,
    ) -> OptimizationReport {
        let Some(leader) = engines.iter().min_by_key(|e| e.id().0) else {
            return OptimizationReport::default();
        };

        // 1) + 2) The leader fetches the accessed/modified set from the
        // dirty-set index and merges in the budget-deferred backlog.
        let stats = infra.statistics(leader.datacenter());
        let (accessed, deferred) = self.take_accessed_set_classified(&stats, infra);

        // 3) Bucket the accessed keys by their dirty-index class tag — no
        // per-object metadata reads. Untagged entries (re-queued deferrals,
        // marks written before the class was known) resolve through the
        // class recorded at insertion; objects with neither have been
        // deleted or never finished their first write, and fall through to
        // the metadata read of step 4 if their class ever evaluates.
        let objects_considered = accessed.len();
        // Hash-indexed first-seen-order grouping: O(1) per entry, no sort
        // of the whole accessed set (each class re-sorts its own members).
        let mut by_class: Vec<(String, Vec<String>)> = Vec::new();
        let mut class_index: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for (row_key, class) in accessed {
            let class_id = match class {
                Some(class_id) => Some(class_id),
                None => stats.object_class(&row_key),
            };
            let Some(class_id) = class_id else { continue };
            match class_index.get(class_id.as_str()) {
                Some(&at) => by_class[at].1.push(row_key),
                None => {
                    class_index.insert(class_id.clone(), by_class.len());
                    by_class.push((class_id, vec![row_key]));
                }
            }
        }

        // 4) One class-level trend detection per class (from the rollup
        // series); only classes that trend — or are forced, or carry a
        // deferral — read member metadata, split by rule and run **one**
        // placement search per `(class, rule)` group. Classes are processed
        // in parallel; members are sorted, so the whole cycle is
        // deterministic at any pool size.
        let classes: Vec<(usize, (String, Vec<String>))> =
            by_class.into_iter().enumerate().collect();
        let group_results: Vec<(OptimizationReport, Vec<MigrationCandidate>)> = classes
            .into_par_iter()
            .map(|(i, (class_id, members))| {
                let engine = &engines[i % engines.len()];
                self.optimize_class(engine, infra, class_id, members, force, &deferred)
            })
            .collect();

        let mut report = OptimizationReport {
            leader: leader.id(),
            objects_considered,
            ..OptimizationReport::default()
        };
        let mut candidates: Vec<MigrationCandidate> = Vec::new();
        for (partial, mut group_candidates) in group_results {
            report = report.merged_with(partial);
            candidates.append(&mut group_candidates);
        }
        report.leader = leader.id();

        // 5) Budgeted batch migration: best saving per migrated byte first,
        // the tail deferred (never dropped) to the next cycle.
        candidates.sort_by(|a, b| {
            b.savings_per_byte
                .partial_cmp(&a.savings_per_byte)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.row_key.cmp(&b.row_key))
        });
        let mut ledger = self.budget.start();
        let mut admitted: Vec<MigrationCandidate> = Vec::new();
        for candidate in candidates {
            if ledger.admit(
                candidate.plan.bytes_moved(candidate.size),
                candidate.plan.migration_cost,
            ) {
                admitted.push(candidate);
            } else {
                report.migrations_deferred += 1;
                self.deferred.lock().insert(candidate.row_key);
            }
        }
        let admitted: Vec<(usize, MigrationCandidate)> = admitted.into_iter().enumerate().collect();
        let migration_totals: (usize, u64) = admitted
            .into_par_iter()
            .map(|(i, candidate)| {
                let engine = &engines[i % engines.len()];
                match engine.replace_placement(&candidate.key, &candidate.plan.to) {
                    Ok(_) => (1usize, candidate.plan.bytes_moved(candidate.size)),
                    // Lost a race against a client write (or a provider
                    // failed): the object is reconsidered when it is next
                    // accessed, exactly like the per-object sweep.
                    Err(_) => (0, 0),
                }
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        report.migrations_executed += migration_totals.0;
        report.bytes_migrated += migration_totals.1;
        report
    }

    /// One class of the accessed set: trend detection over the rollup
    /// series **before** any member metadata is touched — a class whose
    /// access pattern did not change (and is not forced, and carries no
    /// deferral) costs one rollup read and nothing else. Classes that do
    /// evaluate read their members' metadata, split by rule fingerprint and
    /// run [`Self::optimize_group`] once per `(class, rule)` group.
    fn optimize_class(
        &self,
        engine: &Arc<Engine>,
        infra: &Arc<Infrastructure>,
        class_id: String,
        mut member_keys: Vec<String>,
        force: bool,
        deferred: &BTreeSet<String>,
    ) -> (OptimizationReport, Vec<MigrationCandidate>) {
        let mut partial = OptimizationReport::default();
        let mut candidates: Vec<MigrationCandidate> = Vec::new();
        member_keys.sort_unstable();
        member_keys.dedup();
        if member_keys.is_empty() {
            return (partial, candidates);
        }
        let stats = infra.statistics(engine.datacenter());

        // Class-level trend detection: one detector run per class, fed by
        // the incrementally-maintained rollups instead of per-object
        // history reads.
        let class_usage = ClassUsage::from_records(
            stats
                .class_period_records(&class_id, DEFAULT_HISTORY_LEN)
                .into_iter()
                .map(|(period, record)| (period, record.stats, record.objects)),
        );
        let trend_changed = self
            .detector
            .detect_class(&class_usage, DEFAULT_HISTORY_LEN);
        let has_deferred = member_keys.iter().any(|row_key| deferred.contains(row_key));
        if !trend_changed && !force && !has_deferred {
            return (partial, candidates);
        }

        // The class evaluates: now (and only now) read member digests —
        // decoded in place, no cell clone — with a full metadata read only
        // for objects without one. Objects deleted since they were accessed
        // drop out here, exactly like the per-object sweep.
        let mut digests: Vec<MemberDigest> = Vec::with_capacity(member_keys.len());
        for row_key in member_keys {
            let digest = infra
                .database()
                .with_latest(engine.datacenter(), &row_key, "opt", |cell| {
                    MemberDigest::decode(row_key.clone(), &cell.value)
                })
                .flatten();
            let digest = match digest {
                Some(digest) => digest,
                None => {
                    let Some(cell) =
                        infra
                            .database()
                            .get_latest(engine.datacenter(), &row_key, "meta")
                    else {
                        continue;
                    };
                    let Ok(meta) = serde_json::from_value::<ObjectMeta>(cell.value) else {
                        continue;
                    };
                    MemberDigest::from_meta(row_key, meta)
                }
            };
            digests.push(digest);
        }
        // Split by rule identity: one sort with borrowed comparators (no
        // per-member key clones), then slice-grouping of the consecutive
        // runs. Members stay sorted by row key inside each group, so the
        // cycle is deterministic at any pool size.
        digests.sort_unstable_by(|a, b| {
            a.rule_fingerprint
                .cmp(&b.rule_fingerprint)
                .then_with(|| a.rule_name.cmp(&b.rule_name))
                .then_with(|| a.row_key.cmp(&b.row_key))
        });
        let mut groups: Vec<Vec<MemberDigest>> = Vec::new();
        for digest in digests {
            match groups.last_mut() {
                Some(group)
                    if group[0].rule_fingerprint == digest.rule_fingerprint
                        && group[0].rule_name == digest.rule_name =>
                {
                    group.push(digest)
                }
                _ => groups.push(vec![digest]),
            }
        }
        // The class's lifetime samples are fetched — and the deletion-time
        // distribution built — once for the whole class, not once per
        // member, which would re-read the class row (and re-sort the
        // samples) O(members) times.
        let class_lifetimes = infra
            .statistics(scalia_types::ids::DatacenterId::new(0))
            .class_lifetimes(&class_id);
        let lifetime_dist = (!class_lifetimes.is_empty())
            .then(|| scalia_core::lifetime::LifetimeDistribution::from_samples(class_lifetimes));
        for members in groups {
            let group_key = GroupKey::from_fingerprint(
                class_id.clone(),
                members[0].rule_name.clone(),
                members[0].rule_fingerprint,
            );
            let (group_partial, mut group_candidates) = self.optimize_group(
                engine,
                infra,
                group_key,
                members,
                trend_changed,
                &class_usage,
                lifetime_dist.as_ref(),
            );
            partial = partial.merged_with(group_partial);
            candidates.append(&mut group_candidates);
        }
        (partial, candidates)
    }

    /// One `(class, rule)` group of an evaluating class: **one** placement
    /// search, and the per-member migration gate against the shared
    /// [`GroupDecision`]. Members whose digest already matches the decided
    /// placement are done with zero further reads (a plan that moves
    /// nothing can never be beneficial); only divergent members pay the
    /// full metadata read for the exact gate. Returns the group's report
    /// partial and its beneficial migration candidates.
    #[allow(clippy::too_many_arguments)]
    fn optimize_group(
        &self,
        engine: &Arc<Engine>,
        infra: &Arc<Infrastructure>,
        group_key: GroupKey,
        members: Vec<MemberDigest>,
        trend_changed: bool,
        class_usage: &ClassUsage,
        lifetime_dist: Option<&scalia_core::lifetime::LifetimeDistribution>,
    ) -> (OptimizationReport, Vec<MigrationCandidate>) {
        let mut partial = OptimizationReport::default();
        let mut candidates: Vec<MigrationCandidate> = Vec::new();
        if members.is_empty() {
            return (partial, candidates);
        }
        if trend_changed {
            partial.trend_changes += members.len();
        }

        // The class's mean-member demand: for a singleton class this is the
        // member's own history, record for record.
        let mean_history = class_usage.mean_member_history(DEFAULT_HISTORY_LEN);
        let period_hours = infra.sampling_period().as_hours();
        let mean_size = ByteSize::from_bytes(
            (members.iter().map(|m| m.size.bytes()).sum::<u64>() as f64 / members.len() as f64)
                .round() as u64,
        );
        // The search needs the full rule; one representative member's
        // metadata supplies it (every member of the group shares the rule
        // fingerprint). The fallback path has it in hand already.
        let Some(rule) = members.iter().find_map(|member| match &member.meta {
            Some(meta) => Some(meta.rule.clone()),
            None => infra
                .database()
                .get_latest(engine.datacenter(), &member.row_key, "meta")
                .and_then(|cell| serde_json::from_value::<ObjectMeta>(cell.value).ok())
                .map(|meta| meta.rule),
        }) else {
            return (partial, candidates); // Every member vanished mid-cycle.
        };

        // Decision period for the group (adaptive, bounded by the tightest
        // member TTL), amortised across all members on one controller.
        let upper_bound = members
            .iter()
            .map(|member| {
                self.ttl_upper_bound_with(
                    member.ttl_hint_hours,
                    member.written_at,
                    infra,
                    lifetime_dist,
                    &mean_history,
                )
            })
            .min()
            .expect("non-empty group");
        let controller_key = format!("class:{}:{}", group_key.class_id, group_key.rule_name);
        let mut controller = infra.decision_controller(&controller_key, Duration::from_hours(24));
        controller.on_optimization(upper_bound, |window| {
            let periods = window.periods(infra.sampling_period()).max(1) as usize;
            let usage =
                PredictedUsage::from_history(mean_size, &mean_history, periods, period_hours);
            match infra.best_placement_cached(&self.placement, &rule, &group_key.class_id, &usage) {
                Ok(decision) => decision
                    .expected_cost
                    .scale(1.0 / usage.duration_hours.max(1e-9)),
                Err(_) => Money::MAX,
            }
        });
        let decision_period = controller.current();
        infra.store_decision_controller(&controller_key, controller);

        // **One** placement search for the whole group.
        let periods = decision_period.periods(infra.sampling_period()).max(1) as usize;
        let usage = PredictedUsage::from_history(mean_size, &mean_history, periods, period_hours);
        let Ok(decision) =
            infra.best_placement_cached(&self.placement, &rule, &group_key.class_id, &usage)
        else {
            return (partial, candidates);
        };
        partial.searches_executed += 1;
        partial.objects_covered += members.len();
        // One result mapped onto every member — the paper's amortisation
        // made explicit.
        let group_decision = GroupDecision {
            key: group_key,
            catalog_version: infra.catalog().version(),
            usage,
            decision,
            members: members.iter().map(|m| m.row_key.clone()).collect(),
        };
        let usage = group_decision.usage;
        let decision = &group_decision.decision;
        let mut decision_providers: Vec<u32> = decision
            .placement
            .providers
            .iter()
            .map(|p| p.id.0)
            .collect();
        decision_providers.sort_unstable();
        let decision_m = decision.placement.m;

        // Map the decision onto every member: exact per-member pricing (the
        // class rates at the member's exact size), exact migration gate.
        for member in members {
            if member.m == decision_m && member.providers == decision_providers {
                // Already on the decided placement: re-evaluated, nothing
                // to move (a plan whose `from` equals its `to` is never
                // beneficial) — no metadata read needed.
                partial.placements_recomputed += 1;
                continue;
            }
            // Divergent member: now (and only now) deserialise its full
            // metadata for the exact migration gate.
            let meta = match member.meta {
                Some(meta) => meta,
                None => {
                    let Some(cell) =
                        infra
                            .database()
                            .get_latest(engine.datacenter(), &member.row_key, "meta")
                    else {
                        continue; // Deleted mid-cycle.
                    };
                    let Ok(meta) = serde_json::from_value::<ObjectMeta>(cell.value) else {
                        continue;
                    };
                    meta
                }
            };
            let row_key = member.row_key;
            let member_usage = PredictedUsage {
                size: meta.size,
                ..usage
            };
            let Some((m, member_cost)) =
                PlacementEngine::evaluate_set(&rule, &member_usage, &decision.placement.providers)
            else {
                continue; // Decision infeasible at this member's exact size.
            };
            partial.placements_recomputed += 1;

            // `provider_set()` so striped objects price their real current
            // footprint (the top-level chunk list is empty for them); for
            // classic objects the sorted set is the same provider multiset
            // and `MigrationPlan::changes_placement` compares sets anyway.
            let current_providers: Vec<_> = meta
                .striping
                .provider_set()
                .into_iter()
                .filter_map(|p| infra.catalog().get(p))
                .collect();
            let current = Placement {
                providers: current_providers.clone(),
                m: meta.striping.m,
            };
            // Priced with the rule's latency weight so the migration gate
            // compares like with like: the candidate's cost already includes
            // the latency penalty (billing itself never does).
            let current_cost = compute_price_weighted(
                &current_providers,
                meta.striping.m,
                &member_usage,
                rule.latency_weight,
            );
            let to = Placement {
                providers: decision.placement.providers.clone(),
                m,
            };
            let plan = MigrationPlan::build(current, to, &member_usage, current_cost, member_cost);
            if plan.changes_placement() && plan.is_beneficial() {
                candidates.push(MigrationCandidate {
                    savings_per_byte: plan.savings_per_byte(meta.size),
                    row_key,
                    key: meta.key.clone(),
                    size: meta.size,
                    plan,
                });
            }
        }
        (partial, candidates)
    }

    // ------------------------------------------------------------------
    // Per-object sweep (differential baseline)
    // ------------------------------------------------------------------

    /// The pre-class per-object procedure: full-scan accessed-set fetch,
    /// then trend detection, decision-period control and one placement
    /// search **per object**. Kept as the baseline the class-centric sweep
    /// is differential-tested (singleton classes must match bit for bit)
    /// and benchmarked against.
    pub fn run_per_object(
        &self,
        engines: &[Arc<Engine>],
        infra: &Arc<Infrastructure>,
        force: bool,
    ) -> OptimizationReport {
        let Some(leader) = engines.iter().min_by_key(|e| e.id().0) else {
            return OptimizationReport::default();
        };

        let stats = infra.statistics(leader.datacenter());
        let (accessed, _) = self.take_accessed_set_scan(&stats, infra);

        let shard_count = engines.len().max(1);
        let shards: Vec<(usize, Vec<String>)> = accessed
            .chunks(accessed.len().div_ceil(shard_count).max(1))
            .enumerate()
            .map(|(i, chunk)| (i, chunk.to_vec()))
            .collect();

        let merged = shards
            .into_par_iter()
            .map(|(engine_idx, shard)| {
                let engine = &engines[engine_idx % engines.len()];
                let mut partial = OptimizationReport {
                    objects_considered: shard.len(),
                    ..OptimizationReport::default()
                };
                for row_key in &shard {
                    let outcome = self.optimize_object(engine, infra, row_key, force);
                    partial.trend_changes += outcome.trend_changed as usize;
                    partial.placements_recomputed += outcome.recomputed as usize;
                    partial.searches_executed += outcome.recomputed as usize;
                    partial.objects_covered += outcome.recomputed as usize;
                    partial.migrations_executed += outcome.migrated as usize;
                    partial.bytes_migrated += outcome.bytes_migrated;
                }
                partial
            })
            .reduce(OptimizationReport::default, OptimizationReport::merged_with);

        OptimizationReport {
            leader: leader.id(),
            ..merged
        }
    }

    /// For one object: detect a trend change and, if needed, recompute the
    /// placement and migrate. Returns what happened so the caller can fold
    /// it into its shard-private partial report.
    fn optimize_object(
        &self,
        engine: &Arc<Engine>,
        infra: &Arc<Infrastructure>,
        row_key: &str,
        force: bool,
    ) -> ObjectOutcome {
        let mut outcome = ObjectOutcome::default();
        let stats = infra.statistics(engine.datacenter());
        let Some(cell) = infra
            .database()
            .get_latest(engine.datacenter(), row_key, "meta")
        else {
            return outcome; // Object deleted since it was accessed.
        };
        let Ok(meta) = serde_json::from_value::<ObjectMeta>(cell.value) else {
            return outcome;
        };
        let class = ObjectClass::of(&meta.mime, meta.size);

        let history = stats.history(row_key, DEFAULT_HISTORY_LEN);
        let series = history.ops_series(history.len());
        outcome.trend_changed = self.detector.detect(&series);
        if !outcome.trend_changed && !force {
            return outcome;
        }

        // Decision period for this object (adaptive, bounded by TTL).
        let period_hours = infra.sampling_period().as_hours();
        let mut controller = infra.decision_controller(row_key, Duration::from_hours(24));
        let upper_bound = self.ttl_upper_bound(&meta, infra, &history);
        let rule = meta.rule.clone();
        let size = meta.size;
        // All searches below go through the shared placement decision cache
        // (rule + class + usage bucket + catalog version): one optimisation
        // cycle re-prices each class once instead of once per object.
        controller.on_optimization(upper_bound, |window| {
            let periods = window.periods(infra.sampling_period()).max(1) as usize;
            let usage = PredictedUsage::from_history(size, &history, periods, period_hours);
            match infra.best_placement_cached(&self.placement, &rule, class.id(), &usage) {
                Ok(decision) => decision
                    .expected_cost
                    .scale(1.0 / usage.duration_hours.max(1e-9)),
                Err(_) => Money::MAX,
            }
        });
        let decision_period = controller.current();
        infra.store_decision_controller(row_key, controller);

        let periods = decision_period.periods(infra.sampling_period()).max(1) as usize;
        let usage = PredictedUsage::from_history(meta.size, &history, periods, period_hours);

        let Ok(decision) =
            infra.best_placement_cached(&self.placement, &meta.rule, class.id(), &usage)
        else {
            return outcome;
        };
        outcome.recomputed = true;

        // Current placement and its expected cost over the same window —
        // via `provider_set()` so striped objects (empty top-level chunk
        // list) price their real footprint.
        let current_providers: Vec<_> = meta
            .striping
            .provider_set()
            .into_iter()
            .filter_map(|p| infra.catalog().get(p))
            .collect();
        let current = Placement {
            providers: current_providers.clone(),
            m: meta.striping.m,
        };
        // Priced with the rule's latency weight so the migration gate
        // compares like with like: the candidate's expected_cost already
        // includes the latency penalty (billing itself never does).
        let current_cost = compute_price_weighted(
            &current_providers,
            meta.striping.m,
            &usage,
            meta.rule.latency_weight,
        );

        let plan = MigrationPlan::build(
            current,
            decision.placement.clone(),
            &usage,
            current_cost,
            decision.expected_cost,
        );
        if plan.changes_placement() && plan.is_beneficial() {
            let bytes = plan.bytes_moved(meta.size);
            if engine.replace_placement(&meta.key, &plan.to).is_ok() {
                outcome.migrated = true;
                outcome.bytes_migrated = bytes;
            }
        }
        outcome
    }

    /// Upper bound for the decision period: the TTL hint if the writer gave
    /// one, otherwise the expected remaining lifetime of the object's class,
    /// otherwise the length of the available history.
    fn ttl_upper_bound(
        &self,
        meta: &ObjectMeta,
        infra: &Arc<Infrastructure>,
        history: &scalia_types::stats::AccessHistory,
    ) -> Duration {
        // The writer's TTL hint short-circuits before the class row is ever
        // read — no lifetime fetch + sort for hinted objects.
        if meta.ttl_hint_hours.is_some() {
            return self.ttl_upper_bound_with(
                meta.ttl_hint_hours,
                meta.written_at,
                infra,
                None,
                history,
            );
        }
        let stats = infra.statistics(scalia_types::ids::DatacenterId::new(0));
        let class = ObjectClass::of(&meta.mime, meta.size);
        let lifetimes = stats.class_lifetimes(class.id());
        let dist = (!lifetimes.is_empty())
            .then(|| scalia_core::lifetime::LifetimeDistribution::from_samples(lifetimes));
        self.ttl_upper_bound_with(
            meta.ttl_hint_hours,
            meta.written_at,
            infra,
            dist.as_ref(),
            history,
        )
    }

    /// [`Self::ttl_upper_bound`] on the digest fields, with the class's
    /// deletion-time distribution supplied by the caller (the class-centric
    /// sweep builds it once per class).
    fn ttl_upper_bound_with(
        &self,
        ttl_hint_hours: Option<f64>,
        written_at: scalia_types::time::SimTime,
        infra: &Arc<Infrastructure>,
        lifetime_dist: Option<&scalia_core::lifetime::LifetimeDistribution>,
        history: &scalia_types::stats::AccessHistory,
    ) -> Duration {
        if let Some(ttl) = ttl_hint_hours {
            return Duration::from_secs((ttl * 3600.0) as u64);
        }
        if let Some(dist) = lifetime_dist {
            let age = infra.now().since(written_at).as_hours();
            if let Some(remaining) = dist.expected_remaining(age) {
                return Duration::from_secs((remaining.max(1.0) * 3600.0) as u64);
            }
        }
        infra
            .sampling_period()
            .times(history.len().max(1) as u64)
            .max(Duration::from_hours(24))
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::cluster::ScaliaCluster;
    use scalia_types::object::ObjectKey;
    use scalia_types::reliability::Reliability;
    use scalia_types::rules::StorageRule;
    use scalia_types::time::SimTime;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "opt",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            1.0,
        )
    }

    fn simulate_periods(
        cluster: &ScaliaCluster,
        key: &ObjectKey,
        reads_per_hour: &[u64],
        start_hour: u64,
    ) {
        for (i, &reads) in reads_per_hour.iter().enumerate() {
            for _ in 0..reads {
                cluster.get(key).unwrap();
            }
            // Reads must hit the providers to be realistic for billing, but
            // for statistics purposes the log agent records them either way.
            cluster.tick(SimTime::from_hours(start_hour + i as u64 + 1));
        }
    }

    #[test]
    fn report_merge_is_independent_of_shard_interleaving() {
        // Partial reports as four shards of one procedure would produce them.
        let partials = [
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 10,
                trend_changes: 1,
                placements_recomputed: 3,
                migrations_executed: 1,
                searches_executed: 1,
                objects_covered: 3,
                migrations_deferred: 1,
                bytes_migrated: 1000,
            },
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 9,
                ..OptimizationReport::default()
            },
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 10,
                trend_changes: 4,
                placements_recomputed: 4,
                migrations_executed: 2,
                searches_executed: 2,
                objects_covered: 4,
                migrations_deferred: 0,
                bytes_migrated: 5000,
            },
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 7,
                trend_changes: 2,
                placements_recomputed: 2,
                migrations_executed: 0,
                searches_executed: 1,
                objects_covered: 2,
                migrations_deferred: 2,
                bytes_migrated: 0,
            },
        ];

        // Every permutation, and every fold association the pool could pick
        // (identity seeded per chunk), must agree.
        let mut orders: Vec<Vec<usize>> = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let order = vec![a, b, c, d];
                        let mut sorted = order.clone();
                        sorted.sort_unstable();
                        if sorted == vec![0, 1, 2, 3] {
                            orders.push(order);
                        }
                    }
                }
            }
        }
        assert_eq!(orders.len(), 24);
        let reference = partials
            .iter()
            .fold(OptimizationReport::default(), |acc, p| acc.merged_with(*p));
        for order in orders {
            let merged = order.iter().fold(OptimizationReport::default(), |acc, &i| {
                acc.merged_with(partials[i])
            });
            assert_eq!(merged, reference, "order {order:?}");
            // Split association: (a·b)·(c·d) — how two pool chunks merge.
            let left = OptimizationReport::default()
                .merged_with(partials[order[0]])
                .merged_with(partials[order[1]]);
            let right = OptimizationReport::default()
                .merged_with(partials[order[2]])
                .merged_with(partials[order[3]]);
            assert_eq!(left.merged_with(right), reference, "split order {order:?}");
        }
        assert_eq!(reference.objects_considered, 36);
        assert_eq!(reference.trend_changes, 7);
        assert_eq!(reference.placements_recomputed, 9);
        assert_eq!(reference.migrations_executed, 3);
        assert_eq!(reference.searches_executed, 4);
        assert_eq!(reference.objects_covered, 9);
        assert_eq!(reference.migrations_deferred, 3);
        assert_eq!(reference.bytes_migrated, 6000);
        assert_eq!(reference.leader, EngineId::new(2));
    }

    #[test]
    fn procedure_report_is_identical_across_pool_sizes() {
        // The same deployment state optimised under different worker counts
        // must produce the same report (the merges are order-insensitive and
        // the per-group decisions are deterministic).
        let run_with_pool = |workers: usize| {
            let pool = rayon::ThreadPool::new(workers);
            let cluster = ScaliaCluster::builder().build();
            for i in 0..12 {
                let key = ObjectKey::new("c", format!("obj{i}"));
                cluster
                    .put(&key, vec![1u8; 50_000], "image/png", rule(), None)
                    .unwrap();
                cluster.get(&key).unwrap();
            }
            cluster.tick(SimTime::from_hours(1));
            pool.install(|| cluster.run_optimization(true))
        };
        let r1 = run_with_pool(1);
        let r4 = run_with_pool(4);
        assert_eq!(r1, r4);
    }

    #[test]
    fn no_accesses_means_nothing_to_optimize() {
        let cluster = ScaliaCluster::builder().build();
        // Drain the initial state.
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 0);
        assert_eq!(report.migrations_executed, 0);
        assert_eq!(report.searches_executed, 0);
    }

    #[test]
    fn stable_access_pattern_triggers_no_recomputation() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "steady");
        cluster
            .put(&key, vec![1u8; 100_000], "image/png", rule(), None)
            .unwrap();
        cluster.run_optimization(false);
        // A steady 5 reads/hour for 10 hours.
        simulate_periods(&cluster, &key, &[5; 10], 0);
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 1);
        assert_eq!(report.trend_changes, 0);
        assert_eq!(report.searches_executed, 0);
        assert_eq!(report.migrations_executed, 0);
    }

    #[test]
    fn slashdot_spike_triggers_migration_to_mirroring() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "viral");
        cluster
            .put(&key, vec![1u8; 1_000_000], "image/jpeg", rule(), None)
            .unwrap();
        let before = cluster.engine(0).read_metadata(&key).unwrap();
        cluster.run_optimization(false);

        // A quiet stretch first; the optimiser sees no trend change.
        simulate_periods(&cluster, &key, &[0, 0, 0, 0, 1, 1], 0);
        let quiet = cluster.run_optimization(false);
        assert_eq!(quiet.migrations_executed, 0);

        // Then the Slashdot spike: the read volume makes bandwidth dominate
        // and mirroring (m = 1) on the cheap-read providers wins. The
        // optimiser runs while the surge is in progress, like the paper's
        // 5-minute procedure.
        simulate_periods(&cluster, &key, &[10, 80, 150, 150], 6);
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 1);
        assert!(report.trend_changes >= 1, "the spike must be detected");
        assert!(report.placements_recomputed >= 1);
        assert_eq!(
            report.searches_executed, 1,
            "one object in one class: exactly one search"
        );

        let after = cluster.engine(0).read_metadata(&key).unwrap();
        if report.migrations_executed > 0 {
            assert!(
                !after
                    .striping
                    .providers()
                    .iter()
                    .eq(before.striping.providers().iter())
                    || after.striping.m != before.striping.m
            );
            assert_eq!(after.striping.m, 1, "hot object should be mirrored");
        }
        // Whatever happened, the object must still be readable and intact.
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 1_000_000);
    }

    #[test]
    fn forced_optimization_reacts_to_new_provider() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("backups", "weekly.tar");
        let lockin_rule = rule().with_lockin(0.5);
        cluster
            .put(
                &key,
                vec![3u8; 2_000_000],
                "application/x-tar",
                lockin_rule,
                None,
            )
            .unwrap();
        cluster.run_optimization(false);

        // A couple of idle periods, then a much cheaper provider appears.
        cluster.tick(SimTime::from_hours(1));
        cluster.get(&key).unwrap();
        cluster.tick(SimTime::from_hours(2));
        let cheap = scalia_providers::descriptor::ProviderDescriptor::public(
            scalia_types::ids::ProviderId::new(0),
            "UltraCheap",
            "practically free storage",
            scalia_providers::sla::ProviderSla::from_percent(99.9999, 99.9),
            scalia_providers::pricing::PricingPolicy::from_dollars(0.001, 0.0, 0.01, 0.0),
            scalia_types::zone::ZoneSet::all(),
        );
        cluster.infra().register_provider(cheap);

        let report = cluster.run_optimization(true);
        assert!(report.placements_recomputed >= 1);
        assert!(
            report.migrations_executed >= 1,
            "the huge saving must justify migration"
        );
        assert!(report.bytes_migrated > 0);
        let meta = cluster.engine(0).read_metadata(&key).unwrap();
        let names: Vec<String> = meta
            .striping
            .providers()
            .iter()
            .filter_map(|id| cluster.infra().catalog().get(*id))
            .map(|d| d.name)
            .collect();
        assert!(names.contains(&"UltraCheap".to_string()));
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 2_000_000);
    }

    #[test]
    fn one_search_covers_every_member_of_a_class() {
        // 30 objects, all one class (same MIME, same discretised size):
        // a forced cycle runs exactly one placement search and covers all
        // 30 objects with it.
        let cluster = ScaliaCluster::builder().build();
        for i in 0..30 {
            let key = ObjectKey::new("c", format!("member{i}"));
            cluster
                .put(&key, vec![1u8; 64_000], "image/png", rule(), None)
                .unwrap();
            cluster.get(&key).unwrap();
        }
        cluster.tick(SimTime::from_hours(1));
        let report = cluster.run_optimization(true);
        assert_eq!(report.objects_considered, 30);
        assert_eq!(report.searches_executed, 1, "one class ⇒ one search");
        assert_eq!(report.objects_covered, 30);
        assert_eq!(report.placements_recomputed, 30);
    }

    #[test]
    fn searches_are_bounded_by_class_count() {
        // 24 objects in 3 classes (distinct MIME types).
        let cluster = ScaliaCluster::builder().build();
        let mimes = ["image/png", "image/jpeg", "application/pdf"];
        for i in 0..24 {
            let key = ObjectKey::new("c", format!("obj{i}"));
            cluster
                .put(&key, vec![1u8; 64_000], mimes[i % 3], rule(), None)
                .unwrap();
            cluster.get(&key).unwrap();
        }
        cluster.tick(SimTime::from_hours(1));
        let report = cluster.run_optimization(true);
        assert_eq!(report.objects_considered, 24);
        assert_eq!(report.searches_executed, 3, "3 classes ⇒ 3 searches");
        assert_eq!(report.objects_covered, 24);
    }
}
