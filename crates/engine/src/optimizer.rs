//! The periodic optimisation procedure (§III-A3).
//!
//! Every few minutes a new optimisation procedure starts: a *leader* elected
//! among all engines retrieves from the statistics database the set `A` of
//! objects accessed or modified since the previous procedure, splits it into
//! equal shards and assigns one shard per engine. Each engine, in parallel,
//! runs the trend detector on every object of its shard and — only when the
//! access pattern changed considerably — recomputes the placement with
//! Algorithm 1, migrating the chunks when the migration cost is covered by
//! the expected savings.

use crate::engine::Engine;
use crate::infra::Infrastructure;
use parking_lot::Mutex;
use rayon::prelude::*;
use scalia_core::cost::{compute_price_weighted, PredictedUsage};
use scalia_core::migration::MigrationPlan;
use scalia_core::placement::{Placement, PlacementEngine};
use scalia_core::trend::TrendDetector;
use scalia_metastore::model::Timestamp;
use scalia_types::ids::EngineId;
use scalia_types::money::Money;
use scalia_types::object::ObjectMeta;
use scalia_types::time::Duration;
use std::sync::Arc;

/// Statistics of one optimisation procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationReport {
    /// Engine elected leader for this procedure.
    pub leader: EngineId,
    /// Objects in the accessed/modified set `A`.
    pub objects_considered: usize,
    /// Objects whose access pattern changed (trend detected).
    pub trend_changes: usize,
    /// Objects whose placement was recomputed with Algorithm 1.
    pub placements_recomputed: usize,
    /// Objects actually migrated to a new provider set.
    pub migrations_executed: usize,
}

impl OptimizationReport {
    /// Merges two partial reports by summing every counter. The `leader`
    /// field is taken from `self` unless `self` is the empty/default report
    /// (the `reduce` identity), which makes this an associative operation
    /// with [`OptimizationReport::default`] as its neutral element: merging
    /// per-shard partials yields the same total for **any** shard
    /// interleaving or association.
    pub fn merged_with(self, other: OptimizationReport) -> OptimizationReport {
        OptimizationReport {
            leader: if self == OptimizationReport::default() {
                other.leader
            } else {
                self.leader
            },
            objects_considered: self.objects_considered + other.objects_considered,
            trend_changes: self.trend_changes + other.trend_changes,
            placements_recomputed: self.placements_recomputed + other.placements_recomputed,
            migrations_executed: self.migrations_executed + other.migrations_executed,
        }
    }
}

/// What happened to a single object during the optimisation procedure;
/// accumulated into per-shard [`OptimizationReport`] partials so the
/// parallel fan-out shares no mutable state at all.
#[derive(Debug, Clone, Copy, Default)]
struct ObjectOutcome {
    trend_changed: bool,
    recomputed: bool,
    migrated: bool,
}

/// The periodic optimiser.
pub struct PeriodicOptimizer {
    detector: TrendDetector,
    placement: PlacementEngine,
    last_run: Mutex<Timestamp>,
}

impl PeriodicOptimizer {
    /// Creates an optimiser with the given trend detector and placement
    /// engine.
    pub fn new(detector: TrendDetector, placement: PlacementEngine) -> Self {
        PeriodicOptimizer {
            detector,
            placement,
            last_run: Mutex::new(Timestamp::ZERO),
        }
    }

    /// Runs one optimisation procedure over all engines. With
    /// `force = true` every object of the accessed set is re-evaluated even
    /// if its trend did not change (used after the provider catalog changes,
    /// e.g. a new provider registered or one failed).
    pub fn run(
        &self,
        engines: &[Arc<Engine>],
        infra: &Arc<Infrastructure>,
        force: bool,
    ) -> OptimizationReport {
        let Some(leader) = engines.iter().min_by_key(|e| e.id().0) else {
            return OptimizationReport::default();
        };

        // 1) + 2) The leader fetches the accessed/modified object set.
        let since = {
            let mut last = self.last_run.lock();
            let since = *last;
            *last = infra.next_timestamp();
            since
        };
        let stats = infra.statistics(leader.datacenter());
        let accessed = stats.objects_accessed_since(since);

        // 3) + 4) Split A into |E| shards, one per engine, processed in
        // parallel. Each shard folds its outcomes into a private partial
        // report; the partials are merged with `merged_with`, so the
        // fan-out touches no shared counter (no Mutex, no atomics) and the
        // totals are independent of how the shards interleave.
        let shard_count = engines.len().max(1);
        let shards: Vec<(usize, Vec<String>)> = accessed
            .chunks(accessed.len().div_ceil(shard_count).max(1))
            .enumerate()
            .map(|(i, chunk)| (i, chunk.to_vec()))
            .collect();

        let merged = shards
            .into_par_iter()
            .map(|(engine_idx, shard)| {
                let engine = &engines[engine_idx % engines.len()];
                let mut partial = OptimizationReport {
                    objects_considered: shard.len(),
                    ..OptimizationReport::default()
                };
                for row_key in &shard {
                    let outcome = self.optimize_object(engine, infra, row_key, force);
                    partial.trend_changes += outcome.trend_changed as usize;
                    partial.placements_recomputed += outcome.recomputed as usize;
                    partial.migrations_executed += outcome.migrated as usize;
                }
                partial
            })
            .reduce(OptimizationReport::default, OptimizationReport::merged_with);

        OptimizationReport {
            leader: leader.id(),
            ..merged
        }
    }

    /// 5) For one object: detect a trend change and, if needed, recompute
    ///    the placement and migrate. Returns what happened so the caller can
    ///    fold it into its shard-private partial report.
    fn optimize_object(
        &self,
        engine: &Arc<Engine>,
        infra: &Arc<Infrastructure>,
        row_key: &str,
        force: bool,
    ) -> ObjectOutcome {
        let mut outcome = ObjectOutcome::default();
        let stats = infra.statistics(engine.datacenter());
        let Some(cell) = infra
            .database()
            .get_latest(engine.datacenter(), row_key, "meta")
        else {
            return outcome; // Object deleted since it was accessed.
        };
        let Ok(meta) = serde_json::from_value::<ObjectMeta>(cell.value) else {
            return outcome;
        };

        let history = stats.history(row_key, scalia_types::stats::DEFAULT_HISTORY_LEN);
        let series = history.ops_series(history.len());
        outcome.trend_changed = self.detector.detect(&series);
        if !outcome.trend_changed && !force {
            return outcome;
        }

        // Decision period for this object (adaptive, bounded by TTL).
        let period_hours = infra.sampling_period().as_hours();
        let mut controller = infra.decision_controller(row_key, Duration::from_hours(24));
        let upper_bound = self.ttl_upper_bound(&meta, infra, &history);
        let rule = meta.rule.clone();
        let size = meta.size;
        // All searches below go through the shared placement decision cache
        // (rule + usage class + catalog version): one optimisation cycle
        // re-prices each class once instead of once per object.
        controller.on_optimization(upper_bound, |window| {
            let periods = window.periods(infra.sampling_period()).max(1) as usize;
            let usage = PredictedUsage::from_history(size, &history, periods, period_hours);
            match infra.best_placement_cached(&self.placement, &rule, &usage) {
                Ok(decision) => decision
                    .expected_cost
                    .scale(1.0 / usage.duration_hours.max(1e-9)),
                Err(_) => Money::MAX,
            }
        });
        let decision_period = controller.current();
        infra.store_decision_controller(row_key, controller);

        let periods = decision_period.periods(infra.sampling_period()).max(1) as usize;
        let usage = PredictedUsage::from_history(meta.size, &history, periods, period_hours);

        let Ok(decision) = infra.best_placement_cached(&self.placement, &meta.rule, &usage) else {
            return outcome;
        };
        outcome.recomputed = true;

        // Current placement and its expected cost over the same window.
        let current_providers: Vec<_> = meta
            .striping
            .chunks
            .iter()
            .filter_map(|c| infra.catalog().get(c.provider))
            .collect();
        let current = Placement {
            providers: current_providers.clone(),
            m: meta.striping.m,
        };
        // Priced with the rule's latency weight so the migration gate
        // compares like with like: the candidate's expected_cost already
        // includes the latency penalty (billing itself never does).
        let current_cost = compute_price_weighted(
            &current_providers,
            meta.striping.m,
            &usage,
            meta.rule.latency_weight,
        );

        let plan = MigrationPlan::build(
            current,
            decision.placement.clone(),
            &usage,
            current_cost,
            decision.expected_cost,
        );
        if plan.changes_placement()
            && plan.is_beneficial()
            && engine.replace_placement(&meta.key, &plan.to).is_ok()
        {
            outcome.migrated = true;
        }
        outcome
    }

    /// Upper bound for the decision period: the TTL hint if the writer gave
    /// one, otherwise the expected remaining lifetime of the object's class,
    /// otherwise the length of the available history.
    fn ttl_upper_bound(
        &self,
        meta: &ObjectMeta,
        infra: &Arc<Infrastructure>,
        history: &scalia_types::stats::AccessHistory,
    ) -> Duration {
        if let Some(ttl) = meta.ttl_hint_hours {
            return Duration::from_secs((ttl * 3600.0) as u64);
        }
        let stats = infra.statistics(scalia_types::ids::DatacenterId::new(0));
        let class = scalia_core::classify::ObjectClass::of(&meta.mime, meta.size);
        let lifetimes = stats.class_lifetimes(class.id());
        if !lifetimes.is_empty() {
            let dist = scalia_core::lifetime::LifetimeDistribution::from_samples(lifetimes);
            let age = infra.now().since(meta.written_at).as_hours();
            if let Some(remaining) = dist.expected_remaining(age) {
                return Duration::from_secs((remaining.max(1.0) * 3600.0) as u64);
            }
        }
        infra
            .sampling_period()
            .times(history.len().max(1) as u64)
            .max(Duration::from_hours(24))
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::cluster::ScaliaCluster;
    use scalia_types::object::ObjectKey;
    use scalia_types::reliability::Reliability;
    use scalia_types::rules::StorageRule;
    use scalia_types::time::SimTime;
    use scalia_types::zone::ZoneSet;

    fn rule() -> StorageRule {
        StorageRule::new(
            "opt",
            Reliability::from_percent(99.999),
            Reliability::from_percent(99.99),
            ZoneSet::all(),
            1.0,
        )
    }

    fn simulate_periods(
        cluster: &ScaliaCluster,
        key: &ObjectKey,
        reads_per_hour: &[u64],
        start_hour: u64,
    ) {
        for (i, &reads) in reads_per_hour.iter().enumerate() {
            for _ in 0..reads {
                cluster.get(key).unwrap();
            }
            // Reads must hit the providers to be realistic for billing, but
            // for statistics purposes the log agent records them either way.
            cluster.tick(SimTime::from_hours(start_hour + i as u64 + 1));
        }
    }

    #[test]
    fn report_merge_is_independent_of_shard_interleaving() {
        // Partial reports as four shards of one procedure would produce them.
        let partials = [
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 10,
                trend_changes: 1,
                placements_recomputed: 3,
                migrations_executed: 1,
            },
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 9,
                trend_changes: 0,
                placements_recomputed: 0,
                migrations_executed: 0,
            },
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 10,
                trend_changes: 4,
                placements_recomputed: 4,
                migrations_executed: 2,
            },
            OptimizationReport {
                leader: EngineId::new(2),
                objects_considered: 7,
                trend_changes: 2,
                placements_recomputed: 2,
                migrations_executed: 0,
            },
        ];

        // Every permutation, and every fold association the pool could pick
        // (identity seeded per chunk), must agree.
        let mut orders: Vec<Vec<usize>> = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let order = vec![a, b, c, d];
                        let mut sorted = order.clone();
                        sorted.sort_unstable();
                        if sorted == vec![0, 1, 2, 3] {
                            orders.push(order);
                        }
                    }
                }
            }
        }
        assert_eq!(orders.len(), 24);
        let reference = partials
            .iter()
            .fold(OptimizationReport::default(), |acc, p| acc.merged_with(*p));
        for order in orders {
            let merged = order.iter().fold(OptimizationReport::default(), |acc, &i| {
                acc.merged_with(partials[i])
            });
            assert_eq!(merged, reference, "order {order:?}");
            // Split association: (a·b)·(c·d) — how two pool chunks merge.
            let left = OptimizationReport::default()
                .merged_with(partials[order[0]])
                .merged_with(partials[order[1]]);
            let right = OptimizationReport::default()
                .merged_with(partials[order[2]])
                .merged_with(partials[order[3]]);
            assert_eq!(left.merged_with(right), reference, "split order {order:?}");
        }
        assert_eq!(reference.objects_considered, 36);
        assert_eq!(reference.trend_changes, 7);
        assert_eq!(reference.placements_recomputed, 9);
        assert_eq!(reference.migrations_executed, 3);
        assert_eq!(reference.leader, EngineId::new(2));
    }

    #[test]
    fn procedure_report_is_identical_across_pool_sizes() {
        // The same deployment state optimised under different worker counts
        // must produce the same report (the merge is order-insensitive and
        // the per-object decisions are deterministic).
        let run_with_pool = |workers: usize| {
            let pool = rayon::ThreadPool::new(workers);
            let cluster = ScaliaCluster::builder().build();
            for i in 0..12 {
                let key = ObjectKey::new("c", format!("obj{i}"));
                cluster
                    .put(&key, vec![1u8; 50_000], "image/png", rule(), None)
                    .unwrap();
                cluster.get(&key).unwrap();
            }
            cluster.tick(SimTime::from_hours(1));
            pool.install(|| cluster.run_optimization(true))
        };
        let r1 = run_with_pool(1);
        let r4 = run_with_pool(4);
        assert_eq!(r1.objects_considered, r4.objects_considered);
        assert_eq!(r1.trend_changes, r4.trend_changes);
        assert_eq!(r1.placements_recomputed, r4.placements_recomputed);
        assert_eq!(r1.migrations_executed, r4.migrations_executed);
    }

    #[test]
    fn no_accesses_means_nothing_to_optimize() {
        let cluster = ScaliaCluster::builder().build();
        // Drain the initial state.
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 0);
        assert_eq!(report.migrations_executed, 0);
    }

    #[test]
    fn stable_access_pattern_triggers_no_recomputation() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "steady");
        cluster
            .put(&key, vec![1u8; 100_000], "image/png", rule(), None)
            .unwrap();
        cluster.run_optimization(false);
        // A steady 5 reads/hour for 10 hours.
        simulate_periods(&cluster, &key, &[5; 10], 0);
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 1);
        assert_eq!(report.trend_changes, 0);
        assert_eq!(report.migrations_executed, 0);
    }

    #[test]
    fn slashdot_spike_triggers_migration_to_mirroring() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("c", "viral");
        cluster
            .put(&key, vec![1u8; 1_000_000], "image/jpeg", rule(), None)
            .unwrap();
        let before = cluster.engine(0).read_metadata(&key).unwrap();
        cluster.run_optimization(false);

        // A quiet stretch first; the optimiser sees no trend change.
        simulate_periods(&cluster, &key, &[0, 0, 0, 0, 1, 1], 0);
        let quiet = cluster.run_optimization(false);
        assert_eq!(quiet.migrations_executed, 0);

        // Then the Slashdot spike: the read volume makes bandwidth dominate
        // and mirroring (m = 1) on the cheap-read providers wins. The
        // optimiser runs while the surge is in progress, like the paper's
        // 5-minute procedure.
        simulate_periods(&cluster, &key, &[10, 80, 150, 150], 6);
        let report = cluster.run_optimization(false);
        assert_eq!(report.objects_considered, 1);
        assert!(report.trend_changes >= 1, "the spike must be detected");
        assert!(report.placements_recomputed >= 1);

        let after = cluster.engine(0).read_metadata(&key).unwrap();
        if report.migrations_executed > 0 {
            assert!(
                !after
                    .striping
                    .providers()
                    .iter()
                    .eq(before.striping.providers().iter())
                    || after.striping.m != before.striping.m
            );
            assert_eq!(after.striping.m, 1, "hot object should be mirrored");
        }
        // Whatever happened, the object must still be readable and intact.
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 1_000_000);
    }

    #[test]
    fn forced_optimization_reacts_to_new_provider() {
        let cluster = ScaliaCluster::builder().build();
        let key = ObjectKey::new("backups", "weekly.tar");
        let lockin_rule = rule().with_lockin(0.5);
        cluster
            .put(
                &key,
                vec![3u8; 2_000_000],
                "application/x-tar",
                lockin_rule,
                None,
            )
            .unwrap();
        cluster.run_optimization(false);

        // A couple of idle periods, then a much cheaper provider appears.
        cluster.tick(SimTime::from_hours(1));
        cluster.get(&key).unwrap();
        cluster.tick(SimTime::from_hours(2));
        let cheap = scalia_providers::descriptor::ProviderDescriptor::public(
            scalia_types::ids::ProviderId::new(0),
            "UltraCheap",
            "practically free storage",
            scalia_providers::sla::ProviderSla::from_percent(99.9999, 99.9),
            scalia_providers::pricing::PricingPolicy::from_dollars(0.001, 0.0, 0.01, 0.0),
            scalia_types::zone::ZoneSet::all(),
        );
        cluster.infra().register_provider(cheap);

        let report = cluster.run_optimization(true);
        assert!(report.placements_recomputed >= 1);
        assert!(
            report.migrations_executed >= 1,
            "the huge saving must justify migration"
        );
        let meta = cluster.engine(0).read_metadata(&key).unwrap();
        let names: Vec<String> = meta
            .striping
            .providers()
            .iter()
            .filter_map(|id| cluster.infra().catalog().get(*id))
            .map(|d| d.name)
            .collect();
        assert!(names.contains(&"UltraCheap".to_string()));
        cluster.caches().iter().for_each(|c| c.clear());
        assert_eq!(cluster.get(&key).unwrap().len(), 2_000_000);
    }
}
