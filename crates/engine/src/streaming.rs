//! The staged stripe pipeline: streaming writes, range reads and the
//! multipart/append API.
//!
//! A classic [`Engine::put`] holds the whole payload (and its full encoded
//! footprint) resident while the chunks fan out — fine for photos, hopeless
//! for backups. This module restructures the large-object data path around
//! fixed-size **stripes** ([`crate::infra::Infrastructure::stripe_size_bytes`]):
//!
//! * **Streaming put** — [`Engine::put`] auto-routes payloads above the
//!   threshold ([`crate::infra::Infrastructure::streaming_threshold_bytes`])
//!   through a [`MultipartUpload`] that feeds one stripe at a time. The
//!   pipeline is staged: stripe `k + 1` is *encoded* while stripe `k`'s
//!   chunks are *in flight* ([`rayon::join`] overlaps the CPU-bound encode
//!   with the provider-bound upload), so peak transient buffering is
//!   O(stripe), never O(object). The object checksum accumulates through an
//!   incremental MD5 ([`scalia_types::md5::Md5`]) — the full payload is
//!   never resident in this module.
//! * **Multipart / append** — [`Engine::begin_put`], [`MultipartUpload::put_part`]
//!   and [`MultipartUpload::complete_put`] expose the same pipeline to
//!   callers that produce data incrementally. Parts may be any size; stripes
//!   seal whenever a stripe's worth of bytes has accumulated. The assembled
//!   stripe map commits in **one** metastore transaction
//!   ([`Engine::commit_metadata_with_debt`]) under the row commit lock, so a
//!   crash anywhere before [`MultipartUpload::complete_put`] returns leaves
//!   the previous object version fully intact and at most some orphaned
//!   stripe chunks for [`crate::gc::sweep_orphan_chunks`].
//! * **Range reads** — [`Engine::get_range`] serves `[offset, offset+len)`
//!   by fetching only the covering stripes (each still a hedged
//!   `m`-of-`n` race over the cheapest providers), via
//!   [`crate::chunk_io::fetch_range`].
//!
//! # Per-stripe durability semantics
//!
//! Every stripe lands with the same machinery as a classic put: parallel
//! upload with abort-on-first-failure and rollback, bounded re-placement
//! (capped by [`crate::engine::WRITE_ATTEMPTS`]) excluding the failed
//! provider, and — once re-placement is exhausted — a *degraded* tolerant
//! landing accepted iff `k ≥ m` chunks survive **and** the surviving
//! providers still clear the rule's availability floor. Degraded stripes
//! accumulate into one durability debt recorded (with its repair-queue
//! entry) atomically with the commit, exactly like a degraded classic put;
//! the repair path migrates striped objects stripe by stripe and its
//! full-width commit settles the debt.
//!
//! # Stripe chunk keys
//!
//! Each landing *attempt* of each stripe uses a fresh storage key
//! (`{base}.s{i}` nominally, `{base}.s{i}.r{attempt}` on retries): a failed
//! attempt's rollback may have postponed a chunk delete on a provider that
//! flapped down mid-rollback, and that delete fires unconditionally on
//! recovery — a retry reusing the same keys could land a committed chunk
//! exactly where the pending delete will strike. The committed key is
//! recorded per stripe in [`StripeMeta::skey`].

use crate::chunk_io::{self, HedgeConfig};
use crate::engine::{Engine, WRITE_ATTEMPTS};
use bytes::Bytes;
use scalia_core::availability::get_availability;
use scalia_core::classify::ObjectClass;
use scalia_core::cost::PredictedUsage;
use scalia_core::placement::Placement;
use scalia_erasure::codec::{decode_object, encode_object, EncodedObject};
use scalia_metastore::logagg::AccessKind;
use scalia_types::error::{Result, ScaliaError};
use scalia_types::ids::ProviderId;
use scalia_types::md5::{md5_hex, Md5};
use scalia_types::object::{
    ObjectKey, ObjectMeta, ObjectVersionId, StripeMap, StripeMeta, StripingMeta,
};
use scalia_types::rules::StorageRule;
use scalia_types::size::ByteSize;
use std::borrow::Borrow;
use std::sync::Arc;

/// Bound on metadata re-reads when a range read races MVCC garbage
/// collection (mirrors the retry bound of [`Engine::get`]).
const RANGE_READ_ATTEMPTS: usize = 3;

/// One encoded-but-not-yet-landed stripe held by the pipeline. Holds only
/// the *encoded* chunks — the plaintext is recoverable from the systematic
/// data shards ([`decode_object`]) on the rare retry that needs to
/// re-encode for a different placement, so the pipeline never holds both
/// representations at once.
struct EncodedStripe {
    /// Stripe index within the object.
    index: usize,
    /// The placement this stripe is encoded for.
    placement: Placement,
    /// The encoded chunks.
    encoded: EncodedObject,
    /// Plaintext length of the stripe.
    len: u64,
    /// MD5 of the stripe plaintext (verified on every stripe read).
    checksum: String,
}

/// The storage key of one landing attempt of one stripe: nominally
/// `{base}.s{index}`, salted `.r{attempt}` on retries (see the module docs
/// on why reusing keys across attempts is unsafe).
fn stripe_skey(base: &str, index: usize, attempt: usize) -> String {
    if attempt == 0 {
        format!("{base}.s{index}")
    } else {
        format!("{base}.s{index}.r{attempt}")
    }
}

/// `true` for errors produced by [`crate::infra::Infrastructure::crash_point`]:
/// an injected crash must propagate *without* cleanup (a real crash would
/// not run it) so chaos tests observe genuine crash debris.
fn is_injected_crash(err: &ScaliaError) -> bool {
    matches!(err, ScaliaError::Internal(msg) if msg.starts_with("crash injected"))
}

/// An in-progress streaming upload (see the module docs).
///
/// Obtain one with [`Engine::begin_put`], feed it with
/// [`MultipartUpload::put_part`] and finish with
/// [`MultipartUpload::complete_put`] (or discard it with
/// [`MultipartUpload::abort_put`]). Nothing is visible to readers until
/// `complete_put` commits; an upload dropped without completing leaves at
/// most orphaned chunks for the GC sweep, never a torn object.
///
/// The upload is generic over how it holds its engine: [`Engine::begin_put`]
/// borrows (`MultipartUpload<&Engine>`, the ergonomic default for inline
/// call sites), while [`Engine::begin_put_shared`] clones an [`Arc`] so the
/// upload can outlive the borrow — the front-end's upload-id registry keeps
/// sessions alive across requests this way.
pub struct MultipartUpload<E: Borrow<Engine> = Arc<Engine>> {
    engine: E,
    key: ObjectKey,
    mime: String,
    rule: StorageRule,
    ttl_hint_hours: Option<f64>,
    /// Class and usage fixed at `begin_put` (from the size hint when given):
    /// every stripe prices its placement identically.
    class: ObjectClass,
    usage: PredictedUsage,
    /// Version allocated up front; all stripe keys derive from it.
    version: ObjectVersionId,
    base_skey: String,
    stripe_size: usize,
    /// Plaintext bytes not yet sealed into a stripe (< `stripe_size`).
    buffer: Vec<u8>,
    /// Incremental whole-object checksum.
    md5: Md5,
    total_len: u64,
    /// Stripes already landed at providers, in index order.
    stripes: Vec<StripeMeta>,
    /// The placement the previous stripe sealed with — the fallback when the
    /// placement search turns infeasible mid-stream (e.g. the failure
    /// detector dropped a provider after earlier stripes landed degraded):
    /// like the classic degraded write, later stripes keep targeting the
    /// original set and let the tolerant landing decide.
    last_placement: Option<Placement>,
    /// The encoded stripe whose upload overlaps the next seal.
    in_hand: Option<EncodedStripe>,
    sealed: usize,
    /// Chunks landed / wanted across all stripes; a shortfall becomes one
    /// durability debt at commit.
    have_total: u64,
    want_total: u64,
    peak_buffer_bytes: usize,
    failed: bool,
}

impl Engine {
    /// Starts a multipart upload (see [`crate::streaming`]). Parts fed via
    /// [`MultipartUpload::put_part`] may be any size; nothing becomes
    /// visible until [`MultipartUpload::complete_put`].
    pub fn begin_put(
        &self,
        key: &ObjectKey,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
    ) -> MultipartUpload<&Engine> {
        self.begin_put_with_hint(key, mime, rule, ttl_hint_hours, None)
    }

    /// [`Engine::begin_put`] with an expected total size. The hint only
    /// sharpens the class/usage prediction the per-stripe placement search
    /// prices with — the upload accepts any actual length.
    pub fn begin_put_with_hint(
        &self,
        key: &ObjectKey,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
        size_hint: Option<ByteSize>,
    ) -> MultipartUpload<&Engine> {
        Engine::multipart(self, key, mime, rule, ttl_hint_hours, size_hint)
    }

    /// [`Engine::begin_put_with_hint`] holding the engine by [`Arc`]: the
    /// returned upload is `'static`, so it can live in a session registry
    /// (the front-end keeps one per client upload id) instead of being
    /// confined to the borrow of a single call frame.
    pub fn begin_put_shared(
        self: &Arc<Self>,
        key: &ObjectKey,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
        size_hint: Option<ByteSize>,
    ) -> MultipartUpload {
        Engine::multipart(Arc::clone(self), key, mime, rule, ttl_hint_hours, size_hint)
    }

    /// Shared constructor behind both `begin_put` flavours.
    fn multipart<E: Borrow<Engine>>(
        engine: E,
        key: &ObjectKey,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
        size_hint: Option<ByteSize>,
    ) -> MultipartUpload<E> {
        let this = engine.borrow();
        let stripe_size = this.infra().stripe_size_bytes().max(1) as usize;
        let hint = size_hint.unwrap_or(ByteSize::from_bytes(stripe_size as u64));
        let class = ObjectClass::of(mime, hint);
        let usage = this.predict_usage(&class, hint, ttl_hint_hours);
        let version = this.infra().next_version(&key.row_key());
        let base_skey = StripingMeta::storage_key(key, version);
        MultipartUpload {
            engine,
            key: key.clone(),
            mime: mime.to_string(),
            rule,
            ttl_hint_hours,
            class,
            usage,
            version,
            base_skey,
            stripe_size,
            buffer: Vec::new(),
            md5: Md5::new(),
            total_len: 0,
            stripes: Vec::new(),
            last_placement: None,
            in_hand: None,
            sealed: 0,
            have_total: 0,
            want_total: 0,
            peak_buffer_bytes: 0,
            failed: false,
        }
    }

    /// The streaming write path [`Engine::put`] routes large payloads
    /// through: feeds the payload stripe by stripe into a multipart upload,
    /// so the *pipeline's* transient buffering (plaintext + encoded) stays
    /// O(stripe) regardless of object size. The committed metadata carries
    /// the full stripe map; the object checksum equals the classic path's
    /// whole-payload MD5.
    pub(crate) fn put_streaming(
        &self,
        key: &ObjectKey,
        data: Bytes,
        mime: &str,
        rule: StorageRule,
        ttl_hint_hours: Option<f64>,
    ) -> Result<ObjectMeta> {
        let size_hint = ByteSize::from_bytes(data.len() as u64);
        let mut upload = self.begin_put_with_hint(key, mime, rule, ttl_hint_hours, Some(size_hint));
        let step = upload.stripe_size();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + step).min(data.len());
            if let Err(err) = upload.put_part(&data[offset..end]) {
                // Mirror the classic path's failed-put cleanup — except for
                // injected crashes, whose debris must stay for the GC sweep
                // exactly as a real crash would leave it.
                if !is_injected_crash(&err) {
                    upload.abort_put();
                }
                return Err(err);
            }
            offset = end;
        }
        upload.complete_put()
    }

    /// Reads the byte range `[offset, offset + len)` of an object, fetching
    /// only what the range needs: the covering stripes of a striped object
    /// (each a hedged `m`-of-`n` race), or the single chunk set — decoded
    /// through the systematic range fast path — of a classic one. The
    /// result equals `get(key)[offset..offset+len]` clamped to the object's
    /// end; an empty or past-EOF range yields empty bytes. A cached object
    /// is sliced in memory without provider traffic.
    pub fn get_range(&self, key: &ObjectKey, offset: u64, len: u64) -> Result<Bytes> {
        let row_key = key.row_key();
        if let Some(data) = self.local_cache().get(&row_key) {
            let size = data.len() as u64;
            let end = offset.saturating_add(len).min(size);
            let slice = if offset >= end {
                Bytes::new()
            } else {
                Bytes::copy_from_slice(&data[offset as usize..end as usize])
            };
            self.log_access(
                key,
                AccessKind::Read,
                ByteSize::from_bytes(slice.len() as u64),
                ByteSize::from_bytes(size),
            );
            return Ok(slice);
        }

        // Same MVCC race handling as `Engine::get`: a concurrent overwrite
        // may prune the version whose chunks are in flight; re-read the
        // metadata and retry, bounded. Partial payloads never populate the
        // cache — only full reads do.
        let mut last_err = ScaliaError::ObjectNotFound(key.clone());
        for _ in 0..RANGE_READ_ATTEMPTS {
            let meta = self.read_metadata(key)?;
            match chunk_io::fetch_range(self.infra(), &meta, offset, len, &HedgeConfig::default()) {
                Ok(bytes) => {
                    self.log_access(
                        key,
                        AccessKind::Read,
                        ByteSize::from_bytes(bytes.len() as u64),
                        meta.size,
                    );
                    return Ok(bytes);
                }
                Err(err @ (ScaliaError::NotEnoughChunks { .. } | ScaliaError::DecodeFailed(_))) => {
                    last_err = err;
                }
                Err(err) => return Err(err),
            }
        }
        Err(last_err)
    }

    /// Migrates a striped object to `new_placement` stripe by stripe: each
    /// stripe is fetched (hedged), re-encoded for the new placement and
    /// uploaded under fresh per-stripe keys, keeping the resident working
    /// set O(stripe). The commit is the same conditional (version-validated)
    /// commit as a classic migration — and, being full-width, settles any
    /// degraded-write debt atomically.
    pub(crate) fn replace_placement_striped(
        &self,
        key: &ObjectKey,
        new_placement: &Placement,
        old_meta: ObjectMeta,
    ) -> Result<ObjectMeta> {
        let map =
            old_meta.striping.stripes.as_ref().ok_or_else(|| {
                ScaliaError::Internal("striped migration of unstriped object".into())
            })?;
        let version = self.infra().next_version(&key.row_key());
        let base_skey = StripingMeta::storage_key(key, version);
        let config = HedgeConfig::default();
        let params = new_placement.erasure_params();

        let mut new_stripes: Vec<StripeMeta> = Vec::with_capacity(map.stripes.len());
        let mut land_err: Option<ScaliaError> = None;
        for (i, old_stripe) in map.stripes.iter().enumerate() {
            let landed = chunk_io::fetch_stripe(self.infra(), &old_meta.striping, i, &config)
                .and_then(|plain| {
                    let encoded = encode_object(&plain, params)?;
                    let skey = stripe_skey(&base_skey, i, 0);
                    let striping = chunk_io::upload_encoded(
                        self.infra(),
                        new_placement,
                        &skey,
                        &encoded,
                        &config,
                    )
                    .map_err(ScaliaError::from)?;
                    Ok(StripeMeta {
                        chunks: striping.chunks,
                        m: striping.m,
                        len: old_stripe.len,
                        // The plaintext is unchanged (fetch_stripe verified
                        // it against this very digest).
                        checksum: old_stripe.checksum.clone(),
                        skey,
                    })
                });
            match landed {
                Ok(stripe) => new_stripes.push(stripe),
                Err(err) => {
                    land_err = Some(err);
                    break;
                }
            }
        }
        let striping = StripingMeta::striped(
            base_skey,
            new_placement.m,
            StripeMap {
                stripe_size: map.stripe_size,
                stripes: new_stripes,
            },
        );
        if let Some(err) = land_err {
            // Roll back the stripes that already landed on the new
            // placement; the old version is untouched.
            chunk_io::delete_chunks(self.infra(), &striping);
            return Err(err);
        }
        let new_meta = ObjectMeta {
            version,
            written_at: old_meta.written_at,
            striping,
            ..old_meta.clone()
        };
        self.commit_replacement(key, old_meta.version, &new_meta)?;
        Ok(new_meta)
    }
}

impl<E: Borrow<Engine>> MultipartUpload<E> {
    /// The engine this upload writes through.
    fn engine(&self) -> &Engine {
        self.engine.borrow()
    }

    /// The stripe size this upload seals at, in bytes (snapshotted at
    /// [`Engine::begin_put`]).
    pub fn stripe_size(&self) -> usize {
        self.stripe_size
    }

    /// Total bytes appended so far.
    pub fn bytes_appended(&self) -> u64 {
        self.total_len
    }

    /// High-water mark of the pipeline's transient buffering: unsealed
    /// plaintext + the held encoded stripe + the seal in progress. O(stripe)
    /// by construction — the streaming bench asserts it.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buffer_bytes
    }

    /// Appends bytes to the object. Whenever a full stripe's worth has
    /// accumulated the stripe seals: its plaintext leaves the buffer, is
    /// encoded, and the *previously* encoded stripe's chunks are uploaded
    /// concurrently with the encode (the staged pipeline). An error means
    /// the upload is failed — [`MultipartUpload::complete_put`] will refuse;
    /// call [`MultipartUpload::abort_put`] to reclaim landed chunks (or
    /// drop the upload and let the GC sweep collect them).
    pub fn put_part(&mut self, part: &[u8]) -> Result<()> {
        if self.failed {
            return Err(ScaliaError::Internal(
                "multipart upload already failed".into(),
            ));
        }
        self.md5.update(part);
        self.total_len += part.len() as u64;
        self.buffer.extend_from_slice(part);
        self.note_buffered(0);
        while self.buffer.len() >= self.stripe_size {
            let plain: Vec<u8> = self.buffer.drain(..self.stripe_size).collect();
            if let Err(err) = self.seal_stripe(plain) {
                self.failed = true;
                return Err(err);
            }
        }
        Ok(())
    }

    /// Lands the tail, commits the assembled stripe map in one metastore
    /// transaction and returns the new metadata. An upload whose payload
    /// never filled a single stripe falls back to the classic single-stripe
    /// path — its on-provider layout is bit-identical to a plain
    /// [`Engine::put`] of the same bytes.
    pub fn complete_put(mut self) -> Result<ObjectMeta> {
        if self.failed {
            return Err(ScaliaError::Internal(
                "multipart upload already failed".into(),
            ));
        }
        if self.stripes.is_empty() && self.in_hand.is_none() {
            // Everything fits one classic stripe and nothing has been
            // uploaded yet: delegate wholesale. `put_single`, not `put` —
            // re-routing could recurse when stripe size > threshold.
            let data = Bytes::from(std::mem::take(&mut self.buffer));
            return self.engine().put_single(
                &self.key,
                data,
                &self.mime,
                self.rule.clone(),
                self.ttl_hint_hours,
            );
        }

        // Seal the tail (a short final stripe), then land the stripe still
        // in hand. Both go through the same pipeline step.
        let result = (|| -> Result<()> {
            let tail = std::mem::take(&mut self.buffer);
            if !tail.is_empty() {
                self.seal_stripe(tail)?;
            }
            if let Some(last) = self.in_hand.take() {
                self.land(last)?;
            }
            Ok(())
        })();
        if let Err(err) = result {
            self.failed = true;
            return Err(err);
        }

        let size = ByteSize::from_bytes(self.total_len);
        let final_class = ObjectClass::of(&self.mime, size);
        let striping = StripingMeta::striped(
            self.base_skey.clone(),
            self.stripes.first().map(|s| s.m).unwrap_or(1),
            StripeMap {
                stripe_size: self.stripe_size as u64,
                stripes: std::mem::take(&mut self.stripes),
            },
        );
        let meta = ObjectMeta {
            key: self.key.clone(),
            version: self.version,
            mime: self.mime.clone(),
            size,
            checksum: self.md5.clone().finalize_hex(),
            rule: self.rule.clone(),
            written_at: self.engine().infra().now(),
            ttl_hint_hours: self.ttl_hint_hours,
            striping,
        };

        // Same crash point as the classic path: every chunk is at its
        // provider, nothing is committed.
        self.engine().infra().crash_point("put::after-upload")?;

        // One journaled transaction: metadata, optimiser digest, container
        // index, debt + repair entry (or debt clearance), MVCC prunes —
        // under the row commit lock, atomically with the invalidation.
        let debt = (self.want_total > self.have_total).then(|| {
            serde_json::json!({
                "reason": "degraded-write",
                "have": self.have_total,
                "want": self.want_total,
            })
        });
        let deprecated = {
            let _commit = self.engine().infra().lock_row_commit(&meta.row_key());
            let deprecated = self.engine().commit_metadata_with_debt(&meta, debt)?;
            self.engine().invalidate_everywhere(&meta.row_key());
            deprecated
        };
        self.engine().infra().crash_point("put::after-commit")?;
        for striping in &deprecated {
            self.engine().delete_chunks(striping);
        }
        self.engine()
            .record_class_with_retry(&self.key.row_key(), final_class.id());
        self.engine()
            .log_access(&self.key, AccessKind::Write, size, size);
        Ok(meta)
    }

    /// Abandons the upload, deleting every stripe chunk that already landed
    /// (the in-hand stripe was never uploaded). Nothing was committed, so
    /// readers never saw any of it.
    pub fn abort_put(mut self) {
        self.in_hand = None;
        if self.stripes.is_empty() {
            return;
        }
        let striping = StripingMeta::striped(
            self.base_skey.clone(),
            self.stripes.first().map(|s| s.m).unwrap_or(1),
            StripeMap {
                stripe_size: self.stripe_size as u64,
                stripes: std::mem::take(&mut self.stripes),
            },
        );
        chunk_io::delete_chunks(self.engine().infra(), &striping);
    }

    /// Folds the pipeline's current transient footprint into the high-water
    /// mark: unsealed plaintext + held encoded stripe + `extra` (the seal in
    /// progress).
    fn note_buffered(&mut self, extra: usize) {
        let now = self.buffer.len()
            + self
                .in_hand
                .as_ref()
                .map(|s| s.encoded.stored_bytes())
                .unwrap_or(0)
            + extra;
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(now);
    }

    /// One pipeline step: encode `plain` as the next stripe while the
    /// previously encoded stripe (if any) uploads — the two run concurrently
    /// under [`rayon::join`], overlapping CPU with provider I/O.
    fn seal_stripe(&mut self, plain: Vec<u8>) -> Result<()> {
        let index = self.sealed;
        self.sealed += 1;
        let placement =
            match self
                .engine()
                .place_excluding(&self.rule, &self.class, &self.usage, &[])
            {
                Ok(placement) => placement,
                Err(err) => self.last_placement.clone().ok_or(err)?,
            };
        self.last_placement = Some(placement.clone());
        // Charge the seal: plaintext being encoded + its encoded output +
        // whatever is already held.
        let encoded_estimate =
            plain.len() * placement.providers.len().max(1) / placement.m.max(1) as usize;
        self.note_buffered(plain.len() + encoded_estimate);

        let engine = self.engine.borrow();
        let rule = &self.rule;
        let class = &self.class;
        let usage = &self.usage;
        let base_skey = &self.base_skey;
        let prev = self.in_hand.take();

        let encode = |placement: Placement, plain: Vec<u8>| -> Result<EncodedStripe> {
            let checksum = md5_hex(&plain);
            let encoded = encode_object(&plain, placement.erasure_params())?;
            Ok(EncodedStripe {
                index,
                len: plain.len() as u64,
                checksum,
                placement,
                encoded,
            })
        };

        let (landed, fresh) = match prev {
            Some(prev) => {
                let (landed, fresh) = rayon::join(
                    || land_stripe(engine, rule, class, usage, base_skey, prev),
                    || encode(placement, plain),
                );
                (Some(landed), fresh?)
            }
            None => (None, encode(placement, plain)?),
        };
        if let Some(landed) = landed {
            let (stripe, have, want) = landed?;
            self.have_total += have;
            self.want_total += want;
            self.stripes.push(stripe);
            // Chaos crash point: a stripe's chunks are durable at providers
            // but the stripe map is not committed — a crash here must leave
            // the previous object version intact and only orphan bytes for
            // the GC sweep.
            self.engine()
                .infra()
                .crash_point("put_part::after-stripe")?;
        }
        self.in_hand = Some(fresh);
        self.note_buffered(0);
        Ok(())
    }

    /// Lands one encoded stripe and records it.
    fn land(&mut self, stripe: EncodedStripe) -> Result<()> {
        let (meta, have, want) = land_stripe(
            self.engine.borrow(),
            &self.rule,
            &self.class,
            &self.usage,
            &self.base_skey,
            stripe,
        )?;
        self.have_total += have;
        self.want_total += want;
        self.stripes.push(meta);
        self.engine()
            .infra()
            .crash_point("put_part::after-stripe")?;
        Ok(())
    }
}

/// Uploads one encoded stripe with the classic put's retry ladder: parallel
/// upload with rollback, bounded re-placement excluding the failed provider
/// (re-encoding only when the `(m, n)` geometry changes — the systematic
/// data shards reconstruct the plaintext in memory, no provider reads), and
/// the degraded tolerant fallback once attempts are exhausted. Returns the
/// landed stripe plus its `(have, want)` chunk counts for debt accounting.
fn land_stripe(
    engine: &Engine,
    rule: &StorageRule,
    class: &ObjectClass,
    usage: &PredictedUsage,
    base_skey: &str,
    mut stripe: EncodedStripe,
) -> Result<(StripeMeta, u64, u64)> {
    let config = HedgeConfig::default();
    let mut excluded: Vec<ProviderId> = Vec::new();
    loop {
        let attempt = excluded.len();
        let skey = stripe_skey(base_skey, stripe.index, attempt);
        match chunk_io::upload_encoded(
            engine.infra(),
            &stripe.placement,
            &skey,
            &stripe.encoded,
            &config,
        ) {
            Ok(striping) => {
                let want = striping.chunks.len() as u64;
                return Ok((
                    StripeMeta {
                        chunks: striping.chunks,
                        m: striping.m,
                        len: stripe.len,
                        checksum: stripe.checksum,
                        skey,
                    },
                    want,
                    want,
                ));
            }
            Err(failure) => {
                let Some(provider) = failure.provider else {
                    return Err(failure.error);
                };
                if excluded.len() + 1 >= WRITE_ATTEMPTS {
                    // Attempts exhausted: degrade on this placement or
                    // surface the upload error.
                    return land_degraded(
                        engine,
                        rule,
                        &stripe,
                        base_skey,
                        attempt + 1,
                        failure.error,
                    );
                }
                excluded.push(provider);
                match engine.place_excluding(rule, class, usage, &excluded) {
                    Ok(next) => {
                        if next.erasure_params() != stripe.placement.erasure_params() {
                            let plain = decode_object(
                                &stripe.encoded.chunks,
                                stripe.encoded.params,
                                stripe.encoded.original_len,
                            )?;
                            stripe.encoded = encode_object(&plain, next.erasure_params())?;
                        }
                        stripe.placement = next;
                    }
                    // Re-placement found nothing: degrade on the placement
                    // whose upload just failed.
                    Err(_) => {
                        return land_degraded(
                            engine,
                            rule,
                            &stripe,
                            base_skey,
                            attempt + 1,
                            failure.error,
                        )
                    }
                }
            }
        }
    }
}

/// The degraded landing of one stripe — the per-stripe mirror of the
/// classic put's degraded write: every chunk attempted tolerantly, the
/// partial landing accepted iff `k ≥ m` chunks survive and the surviving
/// providers still meet the rule's availability floor; rolled back (and
/// `original` surfaced) otherwise.
fn land_degraded(
    engine: &Engine,
    rule: &StorageRule,
    stripe: &EncodedStripe,
    base_skey: &str,
    attempt: usize,
    original: ScaliaError,
) -> Result<(StripeMeta, u64, u64)> {
    let config = HedgeConfig::default();
    let skey = stripe_skey(base_skey, stripe.index, attempt);
    let Ok(partial) = chunk_io::upload_encoded_tolerant(
        engine.infra(),
        &stripe.placement,
        &skey,
        &stripe.encoded,
        &config,
    ) else {
        return Err(original);
    };
    let want = stripe.placement.providers.len() as u64;
    let have = partial.striping.chunks.len() as u64;
    if have == want {
        // Everything landed after all (the earlier failure was transient):
        // a full-width stripe, no debt.
        return Ok((
            StripeMeta {
                chunks: partial.striping.chunks,
                m: partial.striping.m,
                len: stripe.len,
                checksum: stripe.checksum.clone(),
                skey,
            },
            have,
            want,
        ));
    }
    let surviving: Vec<_> = partial
        .striping
        .chunks
        .iter()
        .filter_map(|c| engine.infra().catalog().get(c.provider))
        .collect();
    let availability = get_availability(&surviving, partial.striping.m);
    if surviving.len() == partial.striping.chunks.len() && availability.meets(rule.availability) {
        Ok((
            StripeMeta {
                chunks: partial.striping.chunks,
                m: partial.striping.m,
                len: stripe.len,
                checksum: stripe.checksum.clone(),
                skey,
            },
            have,
            want,
        ))
    } else {
        // Not durable enough to acknowledge: roll the landing back.
        chunk_io::delete_chunks(engine.infra(), &partial.striping);
        Err(original)
    }
}
