//! Shared infrastructure of a Scalia deployment.
//!
//! [`Infrastructure`] bundles everything every engine in every datacenter
//! needs a handle to: the provider catalog and the per-provider simulated
//! backends, the replicated metadata database and the statistics store, the
//! simulation clock, the per-object decision-period controllers, and the
//! queue of deletes postponed because a provider was unreachable (§III-D3).

use crate::placement_cache::{PlacementCache, PlacementCacheStats};
use parking_lot::{Mutex, RwLock};
use scalia_core::cost::PredictedUsage;
use scalia_core::decision::DecisionPeriodController;
use scalia_core::placement::{PlacementDecision, PlacementEngine};
use scalia_metastore::model::Timestamp;
use scalia_metastore::replication::ReplicatedStore;
use scalia_metastore::stats::StatisticsStore;
use scalia_providers::backend::{ObjectStore, SimulatedStore};
use scalia_providers::catalog::ProviderCatalog;
use scalia_providers::descriptor::ProviderDescriptor;
use scalia_types::ids::{DatacenterId, ProviderId};
use scalia_types::money::Money;
use scalia_types::time::{Duration, SimTime};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of lock shards for per-row commit locks and decision-period
/// controllers. Concurrent operations on different objects almost never
/// contend; operations on the same object serialise on its shard.
const LOCK_SHARDS: usize = 64;

fn shard_of(key: &str) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % LOCK_SHARDS
}

/// A delete that could not be executed because the provider was down; it is
/// retried when the provider recovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingDelete {
    /// Provider holding the stale chunk.
    pub provider: ProviderId,
    /// Chunk key to delete.
    pub chunk_key: String,
}

/// Shared state of one Scalia deployment.
pub struct Infrastructure {
    catalog: Arc<ProviderCatalog>,
    backends: RwLock<HashMap<ProviderId, Arc<SimulatedStore>>>,
    database: Arc<ReplicatedStore>,
    clock_secs: AtomicU64,
    write_seq: AtomicU64,
    sampling_period: Duration,
    pending_deletes: Mutex<Vec<PendingDelete>>,
    decision_controllers: Vec<Mutex<HashMap<String, DecisionPeriodController>>>,
    row_commit_locks: Vec<Mutex<()>>,
    placement_cache: PlacementCache,
}

impl Infrastructure {
    /// Creates the infrastructure for a deployment spanning `datacenters`
    /// datacenters, with backends for every provider already in the catalog.
    pub fn new(
        catalog: Arc<ProviderCatalog>,
        datacenters: u32,
        sampling_period: Duration,
    ) -> Arc<Self> {
        let database = Arc::new(ReplicatedStore::with_datacenters(datacenters.max(1)));
        let infra = Arc::new(Infrastructure {
            catalog: catalog.clone(),
            backends: RwLock::new(HashMap::new()),
            database,
            clock_secs: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
            sampling_period,
            pending_deletes: Mutex::new(Vec::new()),
            decision_controllers: (0..LOCK_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            row_commit_locks: (0..LOCK_SHARDS).map(|_| Mutex::new(())).collect(),
            placement_cache: PlacementCache::new(),
        });
        for descriptor in catalog.all() {
            infra.ensure_backend(&descriptor);
        }
        infra
    }

    /// The provider catalog.
    pub fn catalog(&self) -> &Arc<ProviderCatalog> {
        &self.catalog
    }

    /// The replicated metadata database.
    pub fn database(&self) -> &Arc<ReplicatedStore> {
        &self.database
    }

    /// Runs Algorithm 1 through the deployment-wide placement decision
    /// cache: identical searches (same rule, same usage class, same catalog
    /// version) are answered from the memo; every catalog mutation bumps
    /// the version and implicitly invalidates it. All placement call sites
    /// (write path, periodic optimiser, active repair) go through here.
    pub fn best_placement_cached(
        &self,
        engine: &PlacementEngine,
        rule: &scalia_types::rules::StorageRule,
        usage: &PredictedUsage,
    ) -> Result<PlacementDecision, scalia_types::error::ScaliaError> {
        // Read the version BEFORE the provider snapshot: if a catalog
        // mutation races in between, the decision computed from the stale
        // snapshot is cached under the already-invalidated old version
        // instead of poisoning the new one.
        let version = self.catalog.version();
        self.placement_cache.best_placement(
            engine,
            rule,
            usage,
            || self.catalog.available(),
            version,
        )
    }

    /// Hit/miss counters of the placement decision cache.
    pub fn placement_cache_stats(&self) -> PlacementCacheStats {
        self.placement_cache.stats()
    }

    /// A statistics-store view for the given datacenter.
    pub fn statistics(&self, datacenter: DatacenterId) -> StatisticsStore {
        StatisticsStore::new(self.database.clone(), datacenter)
    }

    /// The sampling period (1 hour in the paper).
    pub fn sampling_period(&self) -> Duration {
        self.sampling_period
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.clock_secs.load(Ordering::SeqCst))
    }

    /// The index of the current sampling period.
    pub fn current_period(&self) -> u64 {
        self.now().period_index(self.sampling_period)
    }

    /// Advances the simulated clock, ticking every provider backend so they
    /// charge storage for the elapsed time, and retrying postponed deletes.
    pub fn advance_clock(&self, now: SimTime) {
        self.clock_secs.store(now.secs(), Ordering::SeqCst);
        for backend in self.backends.read().values() {
            backend.tick(now);
        }
        self.retry_pending_deletes();
    }

    /// A fresh, strictly monotonic metadata timestamp for the current time.
    pub fn next_timestamp(&self) -> Timestamp {
        Timestamp::new(
            self.clock_secs.load(Ordering::SeqCst),
            self.write_seq.fetch_add(1, Ordering::SeqCst),
        )
    }

    /// Registers a provider (catalog + backend). Returns its assigned id.
    pub fn register_provider(&self, descriptor: ProviderDescriptor) -> ProviderId {
        let id = self.catalog.register(descriptor);
        let registered = self.catalog.get(id).expect("just registered");
        self.ensure_backend(&registered);
        id
    }

    fn ensure_backend(&self, descriptor: &ProviderDescriptor) {
        let mut backends = self.backends.write();
        backends
            .entry(descriptor.id)
            .or_insert_with(|| SimulatedStore::shared(descriptor.clone()));
    }

    /// The backend of a provider, if it exists.
    pub fn backend(&self, provider: ProviderId) -> Option<Arc<SimulatedStore>> {
        self.backends.read().get(&provider).cloned()
    }

    /// All provider backends.
    pub fn backends(&self) -> Vec<Arc<SimulatedStore>> {
        self.backends.read().values().cloned().collect()
    }

    /// Takes a provider down or up, both in the catalog (so the placement
    /// engine avoids it) and at its backend (so requests fail).
    pub fn set_provider_down(&self, provider: ProviderId, down: bool) {
        if down {
            self.catalog.mark_unavailable(provider);
        } else {
            self.catalog.mark_available(provider);
        }
        if let Some(backend) = self.backend(provider) {
            backend.set_down(down);
        }
    }

    /// Total money accrued across all provider backends — what the data
    /// owner would actually be billed.
    pub fn total_cost(&self) -> Money {
        self.backends
            .read()
            .values()
            .map(|b| b.accrued_cost())
            .sum()
    }

    /// Queues a delete that could not reach its provider.
    pub fn postpone_delete(&self, provider: ProviderId, chunk_key: String) {
        self.pending_deletes.lock().push(PendingDelete {
            provider,
            chunk_key,
        });
    }

    /// Number of deletes still waiting for their provider to recover.
    pub fn pending_delete_count(&self) -> usize {
        self.pending_deletes.lock().len()
    }

    /// Retries every postponed delete whose provider is reachable again.
    pub fn retry_pending_deletes(&self) {
        let mut pending = self.pending_deletes.lock();
        let mut remaining = Vec::new();
        for delete in pending.drain(..) {
            let done = self
                .backend(delete.provider)
                .filter(|b| b.is_up())
                .map(|b| b.delete(&delete.chunk_key).is_ok())
                .unwrap_or(false);
            if !done {
                remaining.push(delete);
            }
        }
        *pending = remaining;
    }

    /// The decision-period controller of an object, created on first use
    /// with the given initial window. Controllers are sharded by row-key
    /// hash so the parallel optimiser's shards don't serialise on one map.
    pub fn decision_controller(
        &self,
        row_key: &str,
        initial: Duration,
    ) -> DecisionPeriodController {
        self.decision_controllers[shard_of(row_key)]
            .lock()
            .entry(row_key.to_string())
            .or_insert_with(|| DecisionPeriodController::new(initial, self.sampling_period, 4096))
            .clone()
    }

    /// Stores back an updated decision-period controller.
    pub fn store_decision_controller(&self, row_key: &str, controller: DecisionPeriodController) {
        self.decision_controllers[shard_of(row_key)]
            .lock()
            .insert(row_key.to_string(), controller);
    }

    /// Serialises metadata commits for one object: `Engine::put`, `delete`
    /// and `replace_placement` hold this guard around their read-validate-
    /// commit sections so MVCC pruning and version garbage collection see a
    /// consistent latest version. The lock is sharded by row-key hash and is
    /// **never** held across a placement search or provider upload — only
    /// across the metadata mutation itself.
    pub fn lock_row_commit(&self, row_key: &str) -> parking_lot::MutexGuard<'_, ()> {
        self.row_commit_locks[shard_of(row_key)].lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scalia_providers::catalog::cheapstor;

    fn infra() -> Arc<Infrastructure> {
        Infrastructure::new(ProviderCatalog::paper_catalog(), 2, Duration::HOUR)
    }

    #[test]
    fn backends_exist_for_every_catalog_provider() {
        let infra = infra();
        assert_eq!(infra.backends().len(), 5);
        for provider in infra.catalog().all() {
            assert!(infra.backend(provider.id).is_some());
        }
        assert!(infra.backend(ProviderId::new(99)).is_none());
    }

    #[test]
    fn clock_and_timestamps_are_monotonic() {
        let infra = infra();
        assert_eq!(infra.now(), SimTime::ZERO);
        infra.advance_clock(SimTime::from_hours(5));
        assert_eq!(infra.now(), SimTime::from_hours(5));
        assert_eq!(infra.current_period(), 5);
        let t1 = infra.next_timestamp();
        let t2 = infra.next_timestamp();
        assert!(t2 > t1);
    }

    #[test]
    fn registering_a_provider_adds_its_backend() {
        let infra = infra();
        let id = infra.register_provider(cheapstor(ProviderId::new(0)));
        assert!(infra.backend(id).is_some());
        assert_eq!(infra.catalog().len(), 6);
    }

    #[test]
    fn provider_outage_toggles_catalog_and_backend() {
        let infra = infra();
        let target = infra.catalog().all()[1].id;
        infra.set_provider_down(target, true);
        assert!(!infra.catalog().is_available(target));
        assert!(!infra.backend(target).unwrap().is_up());
        infra.set_provider_down(target, false);
        assert!(infra.catalog().is_available(target));
        assert!(infra.backend(target).unwrap().is_up());
    }

    #[test]
    fn postponed_deletes_retry_after_recovery() {
        let infra = infra();
        let target = infra.catalog().all()[0].id;
        let backend = infra.backend(target).unwrap();
        backend
            .put("stale-chunk", Bytes::from_static(b"x"))
            .unwrap();

        infra.set_provider_down(target, true);
        infra.postpone_delete(target, "stale-chunk".to_string());
        infra.retry_pending_deletes();
        assert_eq!(infra.pending_delete_count(), 1, "provider still down");

        infra.set_provider_down(target, false);
        infra.advance_clock(SimTime::from_hours(1));
        assert_eq!(infra.pending_delete_count(), 0);
        assert!(!backend.exists("stale-chunk").unwrap());
    }

    #[test]
    fn total_cost_aggregates_backends() {
        let infra = infra();
        let backend = infra.backends()[0].clone();
        backend.put("k", Bytes::from(vec![0u8; 1_000_000])).unwrap();
        assert!(infra.total_cost().is_positive());
    }

    #[test]
    fn decision_controllers_persist_per_object() {
        let infra = infra();
        let c = infra.decision_controller("row1", Duration::from_hours(24));
        assert_eq!(c.current(), Duration::from_hours(24));
        let mut updated = c.clone();
        updated.on_optimization(Duration::from_days(30), |d| {
            Money::from_dollars(d.as_hours())
        });
        infra.store_decision_controller("row1", updated.clone());
        let reloaded = infra.decision_controller("row1", Duration::from_hours(24));
        assert_eq!(reloaded.current(), updated.current());
    }
}
