//! Shared infrastructure of a Scalia deployment.
//!
//! [`Infrastructure`] bundles everything every engine in every datacenter
//! needs a handle to: the provider catalog and the per-provider simulated
//! backends, the replicated metadata database and the statistics store, the
//! simulation clock, the per-object decision-period controllers, the queue
//! of deletes postponed because a provider was unreachable (§III-D3), the
//! provider **failure detector** fed by the chunk-I/O layer (consecutive
//! errors trip the provider into catalog-unavailable; recovery is re-probed
//! on every clock advance), and the deployment-wide per-operation latency
//! histograms behind [`Infrastructure::io_latency_snapshot`].

use crate::placement_cache::{PlacementCache, PlacementCacheStats};
use parking_lot::{Mutex, RwLock};
use scalia_core::cost::PredictedUsage;
use scalia_core::decision::DecisionPeriodController;
use scalia_core::placement::{PlacementDecision, PlacementEngine};
use scalia_metastore::model::Timestamp;
use scalia_metastore::replication::{CrashHook, ReplicatedStore};
use scalia_metastore::stats::StatisticsStore;
use scalia_providers::backend::{ObjectStore, OpLatencies, SimulatedStore, StoreOp};
use scalia_providers::catalog::ProviderCatalog;
use scalia_providers::descriptor::ProviderDescriptor;
use scalia_providers::failure::FaultPlan;
use scalia_types::error::ScaliaError;
use scalia_types::ids::{DatacenterId, ProviderId};
use scalia_types::latency::{DecayingHistogram, LatencySnapshot};
use scalia_types::money::Money;
use scalia_types::object::ObjectVersionId;
use scalia_types::time::{Duration, SimTime};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of lock shards for per-row commit locks and decision-period
/// controllers. Concurrent operations on different objects almost never
/// contend; operations on the same object serialise on its shard.
const LOCK_SHARDS: usize = 64;

/// Consecutive chunk-I/O failures after which the failure detector marks a
/// provider unavailable in the catalog (a hard "connection refused" —
/// [`ScaliaError::ProviderUnavailable`] — trips it immediately, §III-D3).
pub const FAILURE_DETECTOR_THRESHOLD: u32 = 3;

/// Tunable knobs of the provider failure detector. The default is
/// bit-for-bit the historical behaviour: trip after
/// [`FAILURE_DETECTOR_THRESHOLD`] consecutive transport errors, re-probe
/// detector-disabled providers on every clock advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Consecutive transport-level errors before the detector trips a
    /// provider into catalog-unavailable. Hard unreachability
    /// ([`ScaliaError::ProviderUnavailable`]) still trips immediately and
    /// data-level answers still never count, whatever this is set to.
    pub transport_error_threshold: u32,
    /// Minimum simulated time between re-probes of detector-disabled
    /// providers. [`Duration::ZERO`] re-probes on every clock advance.
    pub reprobe_interval: Duration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            transport_error_threshold: FAILURE_DETECTOR_THRESHOLD,
            reprobe_interval: Duration::ZERO,
        }
    }
}

/// First retry backoff of a failed pending delete (doubles per failure).
const DELETE_BACKOFF_BASE_SECS: u64 = 60;

/// Backoff ceiling of a failed pending delete.
const DELETE_BACKOFF_CAP_SECS: u64 = 3_600;

/// Spread of the deterministic per-item jitter added to delete backoff.
const DELETE_BACKOFF_JITTER_SECS: u64 = 30;

/// Minimum number of observed chunk-GET samples (across the last two
/// observation windows) before a provider's observed-latency summary is
/// trusted — by the catalog's placement ranking and by the hedged read's
/// deadline. Below the floor, callers fall back to the advertised model.
pub const OBSERVED_MIN_SAMPLES: u64 = 16;

/// The percentile published as a provider's observed read latency: p95, the
/// classic hedging percentile — high enough that healthy jitter stays under
/// it, low enough that a limping provider's stragglers move it.
pub const OBSERVED_PERCENTILE: f64 = 95.0;

fn shard_of(key: &str) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % LOCK_SHARDS
}

/// A delete that could not be executed because the provider was down; it is
/// retried when the provider recovers, with exponential backoff and
/// deterministic per-item jitter after each *attempted-and-failed* retry
/// (a retry skipped because the provider is still unreachable costs no
/// attempt and adds no backoff).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingDelete {
    /// Provider holding the stale chunk.
    pub provider: ProviderId,
    /// Chunk key to delete.
    pub chunk_key: String,
    /// Retries attempted so far (reachable provider, delete still failed).
    pub attempts: u32,
    /// Simulated time (seconds) before which the item is not retried.
    pub not_before_secs: u64,
}

/// Backoff applied after retry number `attempts` (1-based) of a failed
/// pending delete: base 60 s doubling per failure, capped at one hour, plus
/// a deterministic jitter derived from the chunk key and attempt count so a
/// burst of postponed deletes doesn't thunder back in lockstep.
fn delete_backoff_secs(chunk_key: &str, attempts: u32) -> u64 {
    let exponent = attempts.saturating_sub(1).min(6);
    let base = DELETE_BACKOFF_BASE_SECS << exponent;
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    chunk_key.hash(&mut hasher);
    attempts.hash(&mut hasher);
    let jitter = hasher.finish() % DELETE_BACKOFF_JITTER_SECS;
    (base + jitter).min(DELETE_BACKOFF_CAP_SECS)
}

/// Shared state of one Scalia deployment.
pub struct Infrastructure {
    catalog: Arc<ProviderCatalog>,
    backends: RwLock<HashMap<ProviderId, Arc<SimulatedStore>>>,
    database: Arc<ReplicatedStore>,
    clock_secs: AtomicU64,
    write_seq: AtomicU64,
    sampling_period: Duration,
    pending_deletes: Mutex<Vec<PendingDelete>>,
    /// Cumulative count of pending-delete retry *attempts* (provider
    /// reachable, delete issued) — successful or not.
    delete_retries: AtomicU64,
    decision_controllers: Vec<Mutex<HashMap<String, DecisionPeriodController>>>,
    row_commit_locks: Vec<Mutex<()>>,
    placement_cache: PlacementCache,
    /// Failure detector: consecutive chunk-I/O failures per provider.
    failure_counts: Mutex<HashMap<ProviderId, u32>>,
    /// Tunable detector thresholds (defaults reproduce historical behaviour).
    detector_config: RwLock<DetectorConfig>,
    /// Simulated time (seconds) of the last detector re-probe pass, used to
    /// honour [`DetectorConfig::reprobe_interval`]. `None` until the first
    /// pass.
    last_reprobe_secs: Mutex<Option<u64>>,
    /// Deterministic chaos plan (crash points + transport storms); when
    /// installed, engine-step and metastore crash points consult it.
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    /// Providers the detector (not an operator) marked unavailable; these
    /// are re-probed — and re-enabled when their backend responds — on
    /// every clock advance.
    detector_disabled: Mutex<HashSet<ProviderId>>,
    /// Deployment-wide per-operation latency histograms (virtual µs),
    /// recorded by the chunk-I/O layer per object-level put/get/delete.
    io_latencies: Mutex<OpLatencies>,
    /// Virtual makespan of the most recent recorded operation of each
    /// class, for [`Infrastructure::take_last_io_latency`] (indexed
    /// put / get / delete). Meaningful to callers that serialise their
    /// engine calls (the front-end's virtual-time executor does).
    last_io_latencies: Mutex<[Option<u64>; 3]>,
    /// Per-provider windowed summaries of *successful* chunk-GET
    /// round-trips (virtual µs), recorded by the hedged read's fetch tasks.
    /// Rotated on every clock advance, then summarised into the catalog
    /// (observed p95) so placement and hedging adapt to what providers
    /// actually do — and forgive them once the bad window decays out.
    observed_reads: Mutex<HashMap<ProviderId, DecayingHistogram>>,
    /// Per-provider windowed summaries of *successful* chunk-PUT
    /// round-trips (virtual µs), recorded by the parallel upload's tasks.
    /// The write path's upload hedge deadlines use the windowed p95 once
    /// warm — closing the "write-path hedging uses modelled latency only"
    /// gap. Rotated alongside the read windows so a recovered provider is
    /// forgiven in two periods.
    observed_writes: Mutex<HashMap<ProviderId, DecayingHistogram>>,
    /// Stripe size of the streaming put pipeline, in bytes.
    stripe_size_bytes: AtomicU64,
    /// Payload size above which `Engine::put` routes through the streaming
    /// stripe pipeline instead of the classic single-stripe path.
    streaming_threshold_bytes: AtomicU64,
    /// Retries spent re-attempting `record_object_class` after a transient
    /// statistics failure on the write path.
    class_record_retries: AtomicU64,
    /// Writes whose class tag could not be recorded even after retries —
    /// surfaced instead of silently swallowed; the object stays readable
    /// but the class optimizer will not group it until a later touch.
    class_record_failures: AtomicU64,
    /// Per-deployment object-version sequence. Versions are minted from
    /// *this* counter, not the process-global one, so the storage keys a
    /// deployment derives (and therefore its key-salted virtual latencies)
    /// depend only on its own operation history — the property that makes
    /// a seeded traffic replay bit-reproducible no matter what other
    /// clusters ran earlier in the same process.
    version_counter: AtomicU64,
}

/// Default stripe size of the streaming pipeline: 512 KiB keeps the
/// pipeline's high-water buffering (one stripe encoding + one stripe of
/// chunks in flight) comfortably under a few MiB at any realistic `n/m`.
pub const DEFAULT_STRIPE_SIZE_BYTES: u64 = 512 * 1024;

/// Default auto-streaming threshold of `Engine::put`: payloads strictly
/// larger than this take the staged stripe pipeline; smaller payloads keep
/// the classic single-stripe layout (bit-identical to the pre-streaming
/// format).
pub const DEFAULT_STREAMING_THRESHOLD_BYTES: u64 = 2 * 1024 * 1024;

impl Infrastructure {
    /// Creates the infrastructure for a deployment spanning `datacenters`
    /// datacenters, with backends for every provider already in the catalog.
    pub fn new(
        catalog: Arc<ProviderCatalog>,
        datacenters: u32,
        sampling_period: Duration,
    ) -> Arc<Self> {
        let database = Arc::new(ReplicatedStore::with_datacenters(datacenters.max(1)));
        let infra = Arc::new(Infrastructure {
            catalog: catalog.clone(),
            backends: RwLock::new(HashMap::new()),
            database,
            clock_secs: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
            sampling_period,
            pending_deletes: Mutex::new(Vec::new()),
            delete_retries: AtomicU64::new(0),
            decision_controllers: (0..LOCK_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            row_commit_locks: (0..LOCK_SHARDS).map(|_| Mutex::new(())).collect(),
            placement_cache: PlacementCache::new(),
            failure_counts: Mutex::new(HashMap::new()),
            detector_config: RwLock::new(DetectorConfig::default()),
            last_reprobe_secs: Mutex::new(None),
            fault_plan: Mutex::new(None),
            detector_disabled: Mutex::new(HashSet::new()),
            io_latencies: Mutex::new(OpLatencies::default()),
            last_io_latencies: Mutex::new([None; 3]),
            observed_reads: Mutex::new(HashMap::new()),
            observed_writes: Mutex::new(HashMap::new()),
            stripe_size_bytes: AtomicU64::new(DEFAULT_STRIPE_SIZE_BYTES),
            streaming_threshold_bytes: AtomicU64::new(DEFAULT_STREAMING_THRESHOLD_BYTES),
            class_record_retries: AtomicU64::new(0),
            class_record_failures: AtomicU64::new(0),
            version_counter: AtomicU64::new(1),
        });
        for descriptor in catalog.all() {
            infra.ensure_backend(&descriptor);
        }
        infra
    }

    /// The provider catalog.
    pub fn catalog(&self) -> &Arc<ProviderCatalog> {
        &self.catalog
    }

    /// The replicated metadata database.
    pub fn database(&self) -> &Arc<ReplicatedStore> {
        &self.database
    }

    /// Runs Algorithm 1 through the deployment-wide placement decision
    /// cache: identical searches (same rule, same object class, same usage
    /// bucket, same catalog version) are answered from the memo; every
    /// catalog mutation bumps the version and implicitly invalidates it.
    /// All placement call sites (write path, periodic optimiser, active
    /// repair) go through here.
    pub fn best_placement_cached(
        &self,
        engine: &PlacementEngine,
        rule: &scalia_types::rules::StorageRule,
        class_id: &str,
        usage: &PredictedUsage,
    ) -> Result<PlacementDecision, scalia_types::error::ScaliaError> {
        // Read the version BEFORE the provider snapshot: if a catalog
        // mutation races in between, the decision computed from the stale
        // snapshot is cached under the already-invalidated old version
        // instead of poisoning the new one.
        let version = self.catalog.version();
        self.placement_cache.best_placement(
            engine,
            rule,
            class_id,
            usage,
            || self.catalog.available(),
            version,
        )
    }

    /// Hit/miss counters of the placement decision cache.
    pub fn placement_cache_stats(&self) -> PlacementCacheStats {
        self.placement_cache.stats()
    }

    /// A statistics-store view for the given datacenter.
    pub fn statistics(&self, datacenter: DatacenterId) -> StatisticsStore {
        StatisticsStore::new(self.database.clone(), datacenter)
    }

    /// The sampling period (1 hour in the paper).
    pub fn sampling_period(&self) -> Duration {
        self.sampling_period
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.clock_secs.load(Ordering::SeqCst))
    }

    /// The index of the current sampling period.
    pub fn current_period(&self) -> u64 {
        self.now().period_index(self.sampling_period)
    }

    /// Advances the simulated clock, ticking every provider backend so they
    /// charge storage for the elapsed time, and retrying postponed deletes.
    pub fn advance_clock(&self, now: SimTime) {
        self.clock_secs.store(now.secs(), Ordering::SeqCst);
        for backend in self.backends.read().values() {
            backend.tick(now);
        }
        self.retry_pending_deletes();
        let interval = self.detector_config.read().reprobe_interval.secs();
        let due = {
            let mut last = self.last_reprobe_secs.lock();
            let due =
                interval == 0 || last.is_none_or(|l| now.secs().saturating_sub(l) >= interval);
            if due {
                *last = Some(now.secs());
            }
            due
        };
        if due {
            self.reprobe_failed_providers();
        }
        self.rotate_and_publish_observed_latencies();
    }

    /// A fresh, strictly monotonic metadata timestamp for the current time.
    pub fn next_timestamp(&self) -> Timestamp {
        Timestamp::new(
            self.clock_secs.load(Ordering::SeqCst),
            self.write_seq.fetch_add(1, Ordering::SeqCst),
        )
    }

    /// Registers a provider (catalog + backend). Returns its assigned id.
    pub fn register_provider(&self, descriptor: ProviderDescriptor) -> ProviderId {
        let id = self.catalog.register(descriptor);
        let registered = self.catalog.get(id).expect("just registered");
        self.ensure_backend(&registered);
        id
    }

    fn ensure_backend(&self, descriptor: &ProviderDescriptor) {
        let mut backends = self.backends.write();
        backends
            .entry(descriptor.id)
            .or_insert_with(|| SimulatedStore::shared(descriptor.clone()));
    }

    /// The backend of a provider, if it exists.
    pub fn backend(&self, provider: ProviderId) -> Option<Arc<SimulatedStore>> {
        self.backends.read().get(&provider).cloned()
    }

    /// All provider backends.
    pub fn backends(&self) -> Vec<Arc<SimulatedStore>> {
        self.backends.read().values().cloned().collect()
    }

    /// Takes a provider down or up, both in the catalog (so the placement
    /// engine avoids it) and at its backend (so requests fail).
    pub fn set_provider_down(&self, provider: ProviderId, down: bool) {
        if down {
            self.catalog.mark_unavailable(provider);
        } else {
            self.catalog.mark_available(provider);
        }
        if let Some(backend) = self.backend(provider) {
            backend.set_down(down);
        }
    }

    /// Total money accrued across all provider backends — what the data
    /// owner would actually be billed.
    pub fn total_cost(&self) -> Money {
        self.backends
            .read()
            .values()
            .map(|b| b.accrued_cost())
            .sum()
    }

    // ------------------------------------------------------------------
    // Failure detector (§III-D3)
    // ------------------------------------------------------------------

    /// Feeds one chunk-I/O failure into the failure detector. A hard
    /// unreachability error ([`ScaliaError::ProviderUnavailable`]) marks the
    /// provider unavailable in the catalog immediately — §III-D3's "the
    /// provider is marked as unavailable"; transport-level trouble counts
    /// toward [`FAILURE_DETECTOR_THRESHOLD`] consecutive failures.
    ///
    /// Data-level responses from a live provider are **not** reachability
    /// evidence and never touch availability: a missing chunk is the normal
    /// aftermath of an MVCC prune racing a reader, a full private resource
    /// and a rejected signature are provider *answers*. Knocking providers
    /// out for those would let a burst of contended overwrites shrink the
    /// catalog until writes find no feasible placement.
    ///
    /// Detector-tripped providers are re-probed (and re-enabled when their
    /// backend responds again) on every clock advance.
    pub fn report_provider_failure(&self, provider: ProviderId, error: &ScaliaError) {
        let tripped = match error {
            ScaliaError::ProviderUnavailable(_) => true,
            ScaliaError::ChunkMissing { .. }
            | ScaliaError::CapacityExceeded(_)
            | ScaliaError::AuthenticationFailed(_) => false,
            _ => {
                let threshold = self.detector_config.read().transport_error_threshold;
                let mut counts = self.failure_counts.lock();
                let count = counts.entry(provider).or_insert(0);
                *count += 1;
                *count >= threshold
            }
        };
        if tripped {
            self.catalog.mark_unavailable(provider);
            self.detector_disabled.lock().insert(provider);
        }
    }

    /// Feeds one chunk-I/O success into the failure detector, resetting the
    /// provider's consecutive-failure count.
    pub fn report_provider_success(&self, provider: ProviderId) {
        self.failure_counts.lock().remove(&provider);
    }

    /// Consecutive failures currently recorded against a provider.
    pub fn provider_failure_count(&self, provider: ProviderId) -> u32 {
        self.failure_counts
            .lock()
            .get(&provider)
            .copied()
            .unwrap_or(0)
    }

    /// Re-probes every provider the failure detector disabled: if its
    /// backend responds again, the provider returns to the catalog and its
    /// failure count resets. Providers taken down by an operator (or an
    /// outage schedule still in effect) stay down.
    fn reprobe_failed_providers(&self) {
        let disabled: Vec<ProviderId> = self.detector_disabled.lock().iter().copied().collect();
        for provider in disabled {
            if self.backend(provider).is_some_and(|b| b.is_up()) {
                self.catalog.mark_available(provider);
                self.detector_disabled.lock().remove(&provider);
                self.failure_counts.lock().remove(&provider);
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-operation latency accounting
    // ------------------------------------------------------------------

    /// Records the virtual makespan (µs) of one object-level chunk-I/O
    /// operation — the parallel fan-out's critical path, not the sum of its
    /// provider round-trips.
    pub fn record_io_latency(&self, op: StoreOp, us: u64) {
        self.io_latencies.lock().of(op).record(us);
        self.last_io_latencies.lock()[Self::op_index(op)] = Some(us);
    }

    /// Percentile summary of the recorded object-level latencies of `op`.
    pub fn io_latency_snapshot(&self, op: StoreOp) -> LatencySnapshot {
        self.io_latencies.lock().of(op).snapshot()
    }

    fn op_index(op: StoreOp) -> usize {
        match op {
            StoreOp::Put => 0,
            StoreOp::Get => 1,
            StoreOp::Delete => 2,
        }
    }

    /// The virtual makespan (µs) of the most recent object-level operation
    /// of class `op`, consuming it — a second take before another operation
    /// records returns `None`. Operations served without chunk I/O (cache
    /// hits, metadata-only requests) record nothing.
    ///
    /// Only meaningful when the caller serialises its engine calls (the
    /// front-end's virtual-time executor does); with concurrent callers the
    /// value may belong to another caller's operation.
    pub fn take_last_io_latency(&self, op: StoreOp) -> Option<u64> {
        self.last_io_latencies.lock()[Self::op_index(op)].take()
    }

    /// Mints the next object version id from this deployment's own
    /// sequence (see the `version_counter` field): version ids — and the
    /// storage keys derived from them — depend only on this deployment's
    /// operation history, never on other clusters in the same process.
    pub fn next_version(&self, salt: &str) -> ObjectVersionId {
        ObjectVersionId::with_counter(salt, self.version_counter.fetch_add(1, Ordering::Relaxed))
    }

    // ------------------------------------------------------------------
    // Observed read latency (feeds latency-aware placement and hedging)
    // ------------------------------------------------------------------

    /// Records one *successful* chunk-GET round-trip against its provider's
    /// windowed observed-latency summary. Called by the hedged read's fetch
    /// tasks — including stragglers whose result the read no longer needed,
    /// so slow providers keep accumulating evidence.
    pub fn record_provider_read_latency(&self, provider: ProviderId, us: u64) {
        self.observed_reads
            .lock()
            .entry(provider)
            .or_default()
            .record(us);
    }

    /// A provider's observed read-latency percentile over the last two
    /// observation windows, or `None` while fewer than
    /// [`OBSERVED_MIN_SAMPLES`] samples are in view (the warm-up guard: one
    /// unlucky round-trip must not re-rank a provider).
    pub fn observed_read_percentile(&self, provider: ProviderId, percentile: f64) -> Option<u64> {
        self.observed_read_percentile_with_min(provider, percentile, OBSERVED_MIN_SAMPLES)
    }

    /// [`Self::observed_read_percentile`] with a caller-chosen sample floor
    /// (the hedging policy's `min_observed_samples`; `u64::MAX` never
    /// trusts observations). One lock acquisition, no snapshot.
    pub fn observed_read_percentile_with_min(
        &self,
        provider: ProviderId,
        percentile: f64,
        min_samples: u64,
    ) -> Option<u64> {
        let summaries = self.observed_reads.lock();
        let summary = summaries.get(&provider)?;
        if summary.count() < min_samples {
            return None;
        }
        Some(summary.percentile_us(percentile))
    }

    /// Snapshot of a provider's windowed observed-read summary (diagnostics
    /// and tests).
    pub fn observed_read_snapshot(&self, provider: ProviderId) -> LatencySnapshot {
        self.observed_reads
            .lock()
            .get(&provider)
            .map(|s| s.snapshot())
            .unwrap_or_default()
    }

    /// Records one *successful* chunk-PUT round-trip against its provider's
    /// windowed observed write-latency summary. Called by the parallel
    /// upload's tasks, so every write keeps accumulating evidence for the
    /// upload hedge deadlines.
    pub fn record_provider_write_latency(&self, provider: ProviderId, us: u64) {
        self.observed_writes
            .lock()
            .entry(provider)
            .or_default()
            .record(us);
    }

    /// A provider's observed write-latency percentile over the last two
    /// observation windows, or `None` while fewer than `min_samples` are in
    /// view (same warm-up guard as the read summaries; `u64::MAX` never
    /// trusts observations).
    pub fn observed_write_percentile_with_min(
        &self,
        provider: ProviderId,
        percentile: f64,
        min_samples: u64,
    ) -> Option<u64> {
        let summaries = self.observed_writes.lock();
        let summary = summaries.get(&provider)?;
        if summary.count() < min_samples {
            return None;
        }
        Some(summary.percentile_us(percentile))
    }

    /// Snapshot of a provider's windowed observed-write summary
    /// (diagnostics and tests).
    pub fn observed_write_snapshot(&self, provider: ProviderId) -> LatencySnapshot {
        self.observed_writes
            .lock()
            .get(&provider)
            .map(|s| s.snapshot())
            .unwrap_or_default()
    }

    /// Rotates every provider's observation window and publishes the
    /// refreshed summaries (observed p95, or `None` below the sample
    /// floor) into the catalog descriptors. Runs on every clock advance:
    /// one sampling period per window, so a provider whose latest windows
    /// are clean — or empty, because the traffic moved away — is forgiven
    /// within two periods. Zero-valued summaries are never published, so
    /// zero-latency catalogs (the default) are completely unaffected.
    /// The catalog applies its own hysteresis and bumps its version only on
    /// material shifts, invalidating the placement cache exactly when
    /// rankings can actually move.
    fn rotate_and_publish_observed_latencies(&self) {
        let mut summaries = self.observed_reads.lock();
        let published: Vec<(ProviderId, Option<u64>)> = summaries
            .iter_mut()
            .map(|(&provider, summary)| {
                summary.rotate();
                let observed = if summary.count() >= OBSERVED_MIN_SAMPLES {
                    Some(summary.percentile_us(OBSERVED_PERCENTILE)).filter(|&p| p > 0)
                } else {
                    None
                };
                (provider, observed)
            })
            .collect();
        drop(summaries);
        for (provider, observed) in published {
            self.catalog.set_observed_read_latency(provider, observed);
        }
        // Write windows rotate on the same cadence; their summaries stay
        // engine-internal (upload hedge deadlines) — the catalog's
        // placement-visible latency remains read-path, matching what read
        // clients experience.
        for summary in self.observed_writes.lock().values_mut() {
            summary.rotate();
        }
    }

    /// Queues a delete that could not reach its provider. The first retry is
    /// due immediately; backoff only accrues after a retry that reached the
    /// provider and still failed.
    pub fn postpone_delete(&self, provider: ProviderId, chunk_key: String) {
        self.pending_deletes.lock().push(PendingDelete {
            provider,
            chunk_key,
            attempts: 0,
            not_before_secs: 0,
        });
    }

    /// Number of deletes still waiting for their provider to recover.
    pub fn pending_delete_count(&self) -> usize {
        self.pending_deletes.lock().len()
    }

    /// Cumulative number of pending-delete retry attempts issued (the
    /// provider was reachable and the delete was actually tried, whether or
    /// not it succeeded). Exposed for deployment stats and tests.
    pub fn pending_delete_retries(&self) -> u64 {
        self.delete_retries.load(Ordering::SeqCst)
    }

    /// Retries every *due* postponed delete whose provider is reachable
    /// again. An item whose provider is still down is kept untouched (no
    /// attempt is charged); an item that was actually retried and failed is
    /// re-queued with exponential backoff plus deterministic jitter (see
    /// [`delete_backoff_secs`]).
    pub fn retry_pending_deletes(&self) {
        let now_secs = self.clock_secs.load(Ordering::SeqCst);
        let mut pending = self.pending_deletes.lock();
        let mut remaining = Vec::new();
        for mut delete in pending.drain(..) {
            if now_secs < delete.not_before_secs {
                remaining.push(delete);
                continue;
            }
            let Some(backend) = self.backend(delete.provider).filter(|b| b.is_up()) else {
                remaining.push(delete);
                continue;
            };
            self.delete_retries.fetch_add(1, Ordering::SeqCst);
            if backend.delete(&delete.chunk_key).is_err() {
                delete.attempts += 1;
                delete.not_before_secs =
                    now_secs + delete_backoff_secs(&delete.chunk_key, delete.attempts);
                remaining.push(delete);
            }
        }
        *pending = remaining;
    }

    // ------------------------------------------------------------------
    // Detector configuration and chaos fault plans
    // ------------------------------------------------------------------

    /// The current failure-detector configuration.
    pub fn detector_config(&self) -> DetectorConfig {
        *self.detector_config.read()
    }

    /// Replaces the failure-detector configuration. Takes effect on the
    /// next reported failure / clock advance; in-flight consecutive-error
    /// counts are kept.
    pub fn set_detector_config(&self, config: DetectorConfig) {
        *self.detector_config.write() = config;
    }

    /// Installs (or clears, with `None`) the deterministic chaos plan. The
    /// plan's crash points are consulted by the engine's write path via
    /// [`Infrastructure::crash_point`] and wired into the replicated store's
    /// transaction crash hook; its transport storms are armed onto the
    /// targeted provider backends immediately.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault_plan.lock() = plan.clone();
        match plan {
            Some(plan) => {
                for storm in plan.take_storms() {
                    if let Some(backend) = self.backend(storm.provider) {
                        backend.inject_transport_errors(storm.ops as u64);
                    }
                }
                let hook_plan = plan.clone();
                let hook: CrashHook = Arc::new(move |label: &str| hook_plan.check(label));
                self.database.set_crash_hook(Some(hook));
            }
            None => self.database.set_crash_hook(None),
        }
    }

    /// The currently installed chaos plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.lock().clone()
    }

    /// Consults the installed chaos plan at a named engine step, failing
    /// with an injected crash if the point is armed. A no-op (always `Ok`)
    /// without a plan.
    pub fn crash_point(&self, label: &str) -> Result<(), ScaliaError> {
        let plan = self.fault_plan.lock().clone();
        if let Some(plan) = plan {
            if plan.check(label) {
                return Err(ScaliaError::Internal(format!("crash injected at {label}")));
            }
        }
        Ok(())
    }

    /// Stripe size of the streaming put pipeline, in bytes.
    pub fn stripe_size_bytes(&self) -> u64 {
        self.stripe_size_bytes.load(Ordering::Relaxed).max(1)
    }

    /// Sets the streaming stripe size (tests and benches use small stripes
    /// to cross stripe boundaries cheaply). Affects only objects written
    /// after the change; every object's own stripe map is authoritative.
    pub fn set_stripe_size_bytes(&self, bytes: u64) {
        self.stripe_size_bytes
            .store(bytes.max(1), Ordering::Relaxed);
    }

    /// Payload size above which `Engine::put` streams (exclusive).
    pub fn streaming_threshold_bytes(&self) -> u64 {
        self.streaming_threshold_bytes.load(Ordering::Relaxed)
    }

    /// Sets the auto-streaming threshold of `Engine::put`. `u64::MAX`
    /// disables auto-streaming entirely (multipart stays available).
    pub fn set_streaming_threshold_bytes(&self, bytes: u64) {
        self.streaming_threshold_bytes
            .store(bytes, Ordering::Relaxed);
    }

    /// Counts one retry of a transiently-failed `record_object_class`.
    pub fn note_class_record_retry(&self) {
        self.class_record_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write whose class tag could not be recorded even after
    /// retries.
    pub fn note_class_record_failure(&self) {
        self.class_record_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// `(retries, exhausted failures)` of write-path class-tag recording.
    pub fn class_record_counters(&self) -> (u64, u64) {
        (
            self.class_record_retries.load(Ordering::Relaxed),
            self.class_record_failures.load(Ordering::Relaxed),
        )
    }

    /// The decision-period controller of an object, created on first use
    /// with the given initial window. Controllers are sharded by row-key
    /// hash so the parallel optimiser's shards don't serialise on one map.
    pub fn decision_controller(
        &self,
        row_key: &str,
        initial: Duration,
    ) -> DecisionPeriodController {
        self.decision_controllers[shard_of(row_key)]
            .lock()
            .entry(row_key.to_string())
            .or_insert_with(|| DecisionPeriodController::new(initial, self.sampling_period, 4096))
            .clone()
    }

    /// Stores back an updated decision-period controller.
    pub fn store_decision_controller(&self, row_key: &str, controller: DecisionPeriodController) {
        self.decision_controllers[shard_of(row_key)]
            .lock()
            .insert(row_key.to_string(), controller);
    }

    /// Serialises metadata commits for one object: `Engine::put`, `delete`
    /// and `replace_placement` hold this guard around their read-validate-
    /// commit sections so MVCC pruning and version garbage collection see a
    /// consistent latest version. The lock is sharded by row-key hash and is
    /// **never** held across a placement search or provider upload — only
    /// across the metadata mutation itself.
    pub fn lock_row_commit(&self, row_key: &str) -> parking_lot::MutexGuard<'_, ()> {
        self.row_commit_locks[shard_of(row_key)].lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scalia_providers::catalog::cheapstor;

    fn infra() -> Arc<Infrastructure> {
        Infrastructure::new(ProviderCatalog::paper_catalog(), 2, Duration::HOUR)
    }

    #[test]
    fn backends_exist_for_every_catalog_provider() {
        let infra = infra();
        assert_eq!(infra.backends().len(), 5);
        for provider in infra.catalog().all() {
            assert!(infra.backend(provider.id).is_some());
        }
        assert!(infra.backend(ProviderId::new(99)).is_none());
    }

    #[test]
    fn clock_and_timestamps_are_monotonic() {
        let infra = infra();
        assert_eq!(infra.now(), SimTime::ZERO);
        infra.advance_clock(SimTime::from_hours(5));
        assert_eq!(infra.now(), SimTime::from_hours(5));
        assert_eq!(infra.current_period(), 5);
        let t1 = infra.next_timestamp();
        let t2 = infra.next_timestamp();
        assert!(t2 > t1);
    }

    #[test]
    fn registering_a_provider_adds_its_backend() {
        let infra = infra();
        let id = infra.register_provider(cheapstor(ProviderId::new(0)));
        assert!(infra.backend(id).is_some());
        assert_eq!(infra.catalog().len(), 6);
    }

    #[test]
    fn provider_outage_toggles_catalog_and_backend() {
        let infra = infra();
        let target = infra.catalog().all()[1].id;
        infra.set_provider_down(target, true);
        assert!(!infra.catalog().is_available(target));
        assert!(!infra.backend(target).unwrap().is_up());
        infra.set_provider_down(target, false);
        assert!(infra.catalog().is_available(target));
        assert!(infra.backend(target).unwrap().is_up());
    }

    #[test]
    fn postponed_deletes_retry_after_recovery() {
        let infra = infra();
        let target = infra.catalog().all()[0].id;
        let backend = infra.backend(target).unwrap();
        backend
            .put("stale-chunk", Bytes::from_static(b"x"))
            .unwrap();

        infra.set_provider_down(target, true);
        infra.postpone_delete(target, "stale-chunk".to_string());
        infra.retry_pending_deletes();
        assert_eq!(infra.pending_delete_count(), 1, "provider still down");

        infra.set_provider_down(target, false);
        infra.advance_clock(SimTime::from_hours(1));
        assert_eq!(infra.pending_delete_count(), 0);
        assert!(!backend.exists("stale-chunk").unwrap());
    }

    #[test]
    fn failed_delete_retries_back_off_then_drain() {
        let infra = infra();
        let target = infra.catalog().all()[0].id;
        let backend = infra.backend(target).unwrap();
        backend.put("stale", Bytes::from_static(b"x")).unwrap();
        infra.postpone_delete(target, "stale".to_string());
        assert_eq!(infra.pending_delete_retries(), 0);

        // A transport storm makes the first retry reach the provider and
        // still fail: the item is charged an attempt and backs off.
        backend.inject_transport_errors(1);
        infra.retry_pending_deletes();
        assert_eq!(infra.pending_delete_count(), 1);
        assert_eq!(infra.pending_delete_retries(), 1);

        // While backing off, further retry passes don't even attempt it.
        infra.retry_pending_deletes();
        assert_eq!(infra.pending_delete_retries(), 1);

        // First-failure backoff is at most 90 s; two minutes later the
        // retry runs (via the clock advance) and succeeds.
        infra.advance_clock(SimTime::from_secs(120));
        assert_eq!(infra.pending_delete_count(), 0);
        assert_eq!(infra.pending_delete_retries(), 2);
        assert!(!backend.exists("stale").unwrap());
    }

    #[test]
    fn detector_threshold_is_configurable() {
        let infra = infra();
        let target = infra.catalog().all()[1].id;
        assert_eq!(infra.detector_config(), DetectorConfig::default());
        infra.set_detector_config(DetectorConfig {
            transport_error_threshold: 1,
            reprobe_interval: Duration::ZERO,
        });
        infra.report_provider_failure(target, &ScaliaError::Internal("transport timeout".into()));
        assert!(
            !infra.catalog().is_available(target),
            "threshold 1 must trip on the first soft error"
        );
    }

    #[test]
    fn reprobe_interval_defers_detector_recovery() {
        let infra = infra();
        let target = infra.catalog().all()[0].id;
        infra.set_detector_config(DetectorConfig {
            transport_error_threshold: FAILURE_DETECTOR_THRESHOLD,
            reprobe_interval: Duration::from_hours(2),
        });
        infra.advance_clock(SimTime::from_secs(10));
        infra.report_provider_failure(target, &ScaliaError::ProviderUnavailable(target));
        assert!(!infra.catalog().is_available(target));
        // The backend is up, but the next advance lands inside the re-probe
        // interval: the provider must stay disabled.
        infra.advance_clock(SimTime::from_hours(1));
        assert!(!infra.catalog().is_available(target));
        // Once the interval elapses the re-probe restores it.
        infra.advance_clock(SimTime::from_hours(3));
        assert!(infra.catalog().is_available(target));
    }

    #[test]
    fn crash_points_fire_through_the_installed_plan() {
        let infra = infra();
        assert!(infra.crash_point("put::after-upload").is_ok(), "no plan");
        let plan = Arc::new(FaultPlan::new());
        plan.arm("put::after-upload");
        infra.set_fault_plan(Some(plan.clone()));
        assert!(infra.crash_point("put::other").is_ok());
        assert!(infra.crash_point("put::after-upload").is_err());
        assert!(infra.crash_point("put::after-upload").is_ok(), "one-shot");
        assert_eq!(plan.fired(), vec!["put::after-upload".to_string()]);
        infra.set_fault_plan(None);
        assert!(infra.fault_plan().is_none());
    }

    #[test]
    fn hard_unreachability_trips_the_failure_detector_immediately() {
        let infra = infra();
        let target = infra.catalog().all()[0].id;
        assert!(infra.catalog().is_available(target));
        infra.report_provider_failure(target, &ScaliaError::ProviderUnavailable(target));
        assert!(
            !infra.catalog().is_available(target),
            "ProviderUnavailable must mark the provider unavailable at once"
        );
        // The backend itself is up, so the next clock advance re-probes and
        // restores the provider.
        infra.advance_clock(SimTime::from_hours(1));
        assert!(infra.catalog().is_available(target));
        assert_eq!(infra.provider_failure_count(target), 0);
    }

    #[test]
    fn soft_errors_count_to_the_threshold_and_successes_reset() {
        let infra = infra();
        let target = infra.catalog().all()[1].id;
        let soft = ScaliaError::Internal("transport timeout".into());
        for _ in 0..FAILURE_DETECTOR_THRESHOLD - 1 {
            infra.report_provider_failure(target, &soft);
        }
        assert!(infra.catalog().is_available(target), "below threshold");
        assert_eq!(
            infra.provider_failure_count(target),
            FAILURE_DETECTOR_THRESHOLD - 1
        );
        // A success resets the streak.
        infra.report_provider_success(target);
        assert_eq!(infra.provider_failure_count(target), 0);
        // A full streak trips the detector.
        for _ in 0..FAILURE_DETECTOR_THRESHOLD {
            infra.report_provider_failure(target, &soft);
        }
        assert!(!infra.catalog().is_available(target));
    }

    #[test]
    fn data_level_errors_never_touch_availability() {
        // A provider that *answers* — even with "no such chunk" (the normal
        // aftermath of MVCC pruning racing a reader) or "capacity full" —
        // is alive. No volume of such answers may shrink the catalog.
        let infra = infra();
        let target = infra.catalog().all()[3].id;
        let missing = ScaliaError::ChunkMissing {
            provider: target,
            chunk_key: "k".into(),
        };
        for _ in 0..10 * FAILURE_DETECTOR_THRESHOLD {
            infra.report_provider_failure(target, &missing);
            infra.report_provider_failure(target, &ScaliaError::CapacityExceeded(target));
        }
        assert!(infra.catalog().is_available(target));
        assert_eq!(infra.provider_failure_count(target), 0);
    }

    #[test]
    fn reprobe_leaves_operator_disabled_providers_down() {
        let infra = infra();
        let target = infra.catalog().all()[2].id;
        // Down for real (backend + catalog): reads will feed the detector,
        // but the re-probe must not resurrect it while the backend is down.
        infra.set_provider_down(target, true);
        infra.report_provider_failure(target, &ScaliaError::ProviderUnavailable(target));
        infra.advance_clock(SimTime::from_hours(1));
        assert!(
            !infra.catalog().is_available(target),
            "backend is down; re-probe must not re-enable"
        );
        infra.set_provider_down(target, false);
        infra.advance_clock(SimTime::from_hours(2));
        assert!(infra.catalog().is_available(target));
    }

    #[test]
    fn io_latency_histograms_accumulate_per_operation() {
        let infra = infra();
        assert_eq!(infra.io_latency_snapshot(StoreOp::Get).count, 0);
        infra.record_io_latency(StoreOp::Get, 1_000);
        infra.record_io_latency(StoreOp::Get, 3_000);
        infra.record_io_latency(StoreOp::Put, 500);
        let get = infra.io_latency_snapshot(StoreOp::Get);
        assert_eq!(get.count, 2);
        assert_eq!(get.max_us, 3_000);
        assert_eq!(infra.io_latency_snapshot(StoreOp::Put).count, 1);
        assert_eq!(infra.io_latency_snapshot(StoreOp::Delete).count, 0);
    }

    #[test]
    fn observed_read_latencies_publish_and_decay() {
        let infra = infra();
        let target = infra.catalog().all()[0].id;

        // Below the sample floor nothing is trusted or published.
        for _ in 0..OBSERVED_MIN_SAMPLES - 1 {
            infra.record_provider_read_latency(target, 80_000);
        }
        assert_eq!(infra.observed_read_percentile(target, 95.0), None);
        infra.advance_clock(SimTime::from_hours(1));
        assert_eq!(infra.catalog().observed_read_latency(target), None);

        // Enough samples: the p95 summary reaches the catalog descriptor.
        for _ in 0..2 * OBSERVED_MIN_SAMPLES {
            infra.record_provider_read_latency(target, 80_000);
        }
        let p95 = infra.observed_read_percentile(target, 95.0).unwrap();
        assert!(p95 >= 80_000);
        infra.advance_clock(SimTime::from_hours(2));
        let published = infra.catalog().observed_read_latency(target).unwrap();
        assert!(published >= 80_000);
        assert_eq!(
            infra.catalog().get(target).unwrap().read_latency_us(1),
            published,
            "placement-visible latency must be the observed summary"
        );

        // Two idle periods later the window has decayed: the provider is
        // forgiven and the advertised model speaks again.
        infra.advance_clock(SimTime::from_hours(3));
        infra.advance_clock(SimTime::from_hours(4));
        assert_eq!(infra.catalog().observed_read_latency(target), None);
        assert_eq!(infra.observed_read_percentile(target, 95.0), None);
    }

    #[test]
    fn zero_latency_observations_never_touch_the_catalog() {
        // The default catalogs are zero-latency: reads record 0 µs. Those
        // summaries must never be published — otherwise every deployment
        // would pay a placement-cache invalidation for nothing.
        let infra = infra();
        let target = infra.catalog().all()[1].id;
        let version = infra.catalog().version();
        for _ in 0..10 * OBSERVED_MIN_SAMPLES {
            infra.record_provider_read_latency(target, 0);
        }
        infra.advance_clock(SimTime::from_hours(1));
        assert_eq!(infra.catalog().observed_read_latency(target), None);
        assert_eq!(
            infra.catalog().version(),
            version,
            "zero summaries must not bump the catalog version"
        );
    }

    #[test]
    fn total_cost_aggregates_backends() {
        let infra = infra();
        let backend = infra.backends()[0].clone();
        backend.put("k", Bytes::from(vec![0u8; 1_000_000])).unwrap();
        assert!(infra.total_cost().is_positive());
    }

    #[test]
    fn decision_controllers_persist_per_object() {
        let infra = infra();
        let c = infra.decision_controller("row1", Duration::from_hours(24));
        assert_eq!(c.current(), Duration::from_hours(24));
        let mut updated = c.clone();
        updated.on_optimization(Duration::from_days(30), |d| {
            Money::from_dollars(d.as_hours())
        });
        infra.store_decision_controller("row1", updated.clone());
        let reloaded = infra.decision_controller("row1", Duration::from_hours(24));
        assert_eq!(reloaded.current(), updated.current());
    }
}
